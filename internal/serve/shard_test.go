package serve

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"ssdkeeper/internal/nand"
	"ssdkeeper/internal/simrun"
	"ssdkeeper/internal/ssd"
	"ssdkeeper/internal/trace"
)

// TestShardIndexGolden pins the routing function: these values are part of
// the wire contract (a client that pre-shards its keyspace relies on them),
// so a change here is a breaking change, not a refactor.
func TestShardIndexGolden(t *testing.T) {
	cases := []struct {
		tenant int
		key    uint64
		shards int
		want   int
	}{
		{0, 0, 2, 1},
		{1, 0, 2, 0},
		{2, 0, 2, 1},
		{3, 0, 2, 0},
		{0, 0, 4, 1},
		{1, 0, 4, 0},
		{2, 0, 4, 3},
		{3, 0, 4, 2},
		{0, 0, 8, 5},
		{1, 0, 8, 4},
		{2, 0, 8, 7},
		{3, 0, 8, 6},
		{0, 1, 4, 0},
		{0, 2, 4, 3},
		{0, 3, 4, 2},
		{0, 7, 4, 2},
		// Degenerate shard counts collapse to shard 0.
		{5, 9, 1, 0},
		{5, 9, 0, 0},
	}
	for _, c := range cases {
		if got := shardIndex(c.tenant, c.key, c.shards); got != c.want {
			t.Errorf("shardIndex(%d, %d, %d) = %d, want %d", c.tenant, c.key, c.shards, got, c.want)
		}
	}
}

// TestShardRoutingStableAcrossRestarts is the restart guarantee: a second
// server built from the same configuration routes every request to the same
// shard, so per-shard device state lines up across daemon restarts.
func TestShardRoutingStableAcrossRestarts(t *testing.T) {
	clk := newFakeClock()
	cfg := testConfig(clk)
	cfg.ShardCount = 4

	reqs := []Request{
		readReq(0, 0), writeReq(1, 1), readReq(2, 2), writeReq(3, 3),
	}
	for i := uint64(1); i <= 8; i++ {
		r := readReq(0, int64(i))
		r.Key = i
		reqs = append(reqs, r)
	}

	s1 := testServer(t, cfg, nil)
	first := make([]int, len(reqs))
	for i, r := range reqs {
		first[i] = s1.ShardFor(r)
	}
	s1.Drain()

	s2 := testServer(t, cfg, nil)
	defer s2.Drain()
	for i, r := range reqs {
		if got := s2.ShardFor(r); got != first[i] {
			t.Errorf("request %d rerouted after restart: %d then %d", i, first[i], got)
		}
	}

	// Nonzero keys spread one tenant across shards.
	spread := map[int]bool{}
	for _, r := range reqs[4:] {
		spread[s2.ShardFor(r)] = true
	}
	if len(spread) < 2 {
		t.Errorf("8 keys of tenant 0 landed on %d shard(s), want spreading", len(spread))
	}
}

// TestDrainMatchesBatchReplaySharded extends the drain-equivalence guarantee
// to N>1 shards: each shard's final device state equals a batch replay of
// exactly the requests dispatched to that shard, at their admission times.
func TestDrainMatchesBatchReplaySharded(t *testing.T) {
	clk := newFakeClock()
	cfg := testConfig(clk)
	cfg.ShardCount = 3
	cfg.QueueDepth = 2
	cfg.QueueLen = 4
	cfg.Season = simrun.DefaultSeasoning()
	s := testServer(t, cfg, nil)

	// Four requests per tenant with the clock frozen: per (shard, tenant)
	// the first QueueDepth dispatch at sim time 0, the rest only queue and
	// must leave no trace on that shard's device.
	perShardDispatched := make([]trace.Trace, cfg.ShardCount)
	dispatchedCount := make(map[int]int) // tenant → dispatched so far
	var handles []*Pending
	for i := int64(0); i < 4; i++ {
		for tenant := 0; tenant < 4; tenant++ {
			req := writeReq(tenant, i)
			if i%2 == 0 {
				req = readReq(tenant, i)
			}
			p, err := s.SubmitAsync(req)
			if err != nil {
				t.Fatal(err)
			}
			handles = append(handles, p)
			if dispatchedCount[tenant] < cfg.QueueDepth {
				dispatchedCount[tenant]++
				sh := s.ShardFor(req)
				perShardDispatched[sh] = append(perShardDispatched[sh], req.Record(0))
			}
		}
	}

	s.Drain()
	perShard := s.DrainResults()
	if len(perShard) != cfg.ShardCount {
		t.Fatalf("DrainResults returned %d results, want %d", len(perShard), cfg.ShardCount)
	}
	ctx := context.Background()
	var completed, drained int
	for _, p := range handles {
		switch _, err := s.Wait(ctx, p); {
		case err == nil:
			completed++
		case errors.Is(err, ErrDraining):
			drained++
		default:
			t.Errorf("unexpected wait error: %v", err)
		}
	}
	if completed != 8 || drained != 8 {
		t.Errorf("completed=%d drained=%d, want 8 and 8", completed, drained)
	}

	for sh, tr := range perShardDispatched {
		runner := simrun.NewInstrumentedRunner(cfg.Device)
		sess, err := runner.NewSession(simrun.Config{
			Device: cfg.Device, Options: cfg.Options, Season: cfg.Season,
		})
		if err != nil {
			t.Fatal(err)
		}
		replayRes, err := sess.Run(ctx, tr)
		if err != nil {
			t.Fatal(err)
		}
		got := perShard[sh]
		if got.Makespan != replayRes.Makespan {
			t.Errorf("shard %d: makespan %v != replay %v", sh, got.Makespan, replayRes.Makespan)
		}
		if got.FTL != replayRes.FTL {
			t.Errorf("shard %d: FTL counters %+v != replay %+v", sh, got.FTL, replayRes.FTL)
		}
		if !reflect.DeepEqual(got.Device, replayRes.Device) {
			t.Errorf("shard %d: device latency %+v != replay %+v", sh, got.Device, replayRes.Device)
		}
		if got.Conflicts != replayRes.Conflicts {
			t.Errorf("shard %d: conflicts %d != replay %d", sh, got.Conflicts, replayRes.Conflicts)
		}
	}
}

// TestShardedBackpressureIndependent verifies admission capacity is per
// (shard, tenant): filling one tenant's shard leaves the others admissible.
func TestShardedBackpressureIndependent(t *testing.T) {
	clk := newFakeClock()
	cfg := testConfig(clk)
	cfg.ShardCount = 4
	cfg.QueueDepth = 1
	cfg.QueueLen = 1
	s := testServer(t, cfg, nil)
	defer s.Drain()

	for i := int64(0); i < 2; i++ {
		if _, err := s.SubmitAsync(writeReq(0, i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.SubmitAsync(writeReq(0, 2)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overload error = %v, want ErrQueueFull", err)
	}
	for tenant := 1; tenant < 4; tenant++ {
		if _, err := s.SubmitAsync(writeReq(tenant, 0)); err != nil {
			t.Errorf("tenant %d rejected while tenant 0 full: %v", tenant, err)
		}
	}
	// A spread key routes tenant 0 to a different shard with fresh capacity.
	spread := writeReq(0, 3)
	for key := uint64(1); key < 16; key++ {
		spread.Key = key
		if s.ShardFor(spread) != s.ShardFor(writeReq(0, 3)) {
			break
		}
	}
	if _, err := s.SubmitAsync(spread); err != nil {
		t.Errorf("spread-key submit rejected: %v", err)
	}
}

// TestShardedConcurrentServe is the race detector's workout: many client
// goroutines submit and wait against a started (paced) multi-shard server
// while metrics scrapes and time barriers run concurrently, then the server
// drains under fire.
func TestShardedConcurrentServe(t *testing.T) {
	cfg := Config{
		Device:     nand.EvalConfig(),
		Options:    ssd.DefaultOptions(),
		Accel:      1000,
		Now:        time.Now,
		ShardCount: 4,
	}
	s := testServer(t, cfg, nil)
	s.Start()

	const workers = 8
	const perWorker = 25
	var wg sync.WaitGroup
	var okCount, rejCount, canceledCount int64
	var mu sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
			defer cancel()
			for i := 0; i < perWorker; i++ {
				req := writeReq(w%4, int64(i))
				req.Key = uint64(w*perWorker + i + 1)
				_, err := s.Submit(ctx, req)
				mu.Lock()
				switch {
				case err == nil:
					okCount++
				case errors.Is(err, ErrQueueFull), errors.Is(err, ErrDraining):
					rejCount++
				case errors.Is(err, ErrCanceled):
					canceledCount++
				default:
					t.Errorf("worker %d: unexpected error %v", w, err)
				}
				mu.Unlock()
			}
		}(w)
	}
	// Concurrent scrapers exercise the lock-free metrics path.
	stopScrape := make(chan struct{})
	var scrapeWG sync.WaitGroup
	scrapeWG.Add(1)
	go func() {
		defer scrapeWG.Done()
		for {
			select {
			case <-stopScrape:
				return
			default:
			}
			var sb strings.Builder
			s.WriteMetrics(&sb)
			s.SimNow()
		}
	}()
	wg.Wait()
	close(stopScrape)
	scrapeWG.Wait()

	res := s.Drain()
	if err := s.Err(); err != nil {
		t.Fatalf("server poisoned: %v", err)
	}
	if okCount == 0 {
		t.Fatal("no request completed")
	}
	if got := okCount + rejCount + canceledCount; got != workers*perWorker {
		t.Errorf("accounted %d outcomes, want %d", got, workers*perWorker)
	}
	// A canceled request may still have been dispatched (and completed on
	// the device), so equality only holds when nothing was canceled.
	if canceledCount == 0 && res.Requests != int(okCount) {
		t.Errorf("merged result has %d requests, completions say %d", res.Requests, okCount)
	}
}

// TestMetricsShardedSeries checks the per-shard series appear (and sum
// consistently) when more than one shard serves.
func TestMetricsShardedSeries(t *testing.T) {
	clk := newFakeClock()
	cfg := testConfig(clk)
	cfg.ShardCount = 2
	s := testServer(t, cfg, nil)
	defer s.Drain()

	if _, err := s.SubmitAsync(readReq(0, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.SubmitAsync(writeReq(1, 0)); err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Second)
	s.SimNow()

	var buf strings.Builder
	s.WriteMetrics(&buf)
	out := buf.String()
	for _, want := range []string{
		"ssdkeeper_shards 2",
		`ssdkeeper_shard_sim_seconds{shard="0"}`,
		`ssdkeeper_shard_sim_seconds{shard="1"}`,
		`ssdkeeper_admitted_total{tenant="0",op="read"} 1`,
		`ssdkeeper_completed_total{tenant="1",op="write"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
