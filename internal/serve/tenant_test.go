package serve

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"ssdkeeper/internal/simrun"
	"ssdkeeper/internal/trace"
)

// TestDrainTenantMatchesBatchReplay is the tenant-granular face of the
// drain-equivalence guarantee: after DrainTenant, the returned record log,
// replayed as a batch at its recorded arrival times on an identically
// seasoned fresh device, reproduces the tenant's device footprint. With a
// single active tenant the whole node's final drain state must therefore
// equal the batch replay of exactly the handoff log.
func TestDrainTenantMatchesBatchReplay(t *testing.T) {
	clk := newFakeClock()
	cfg := testConfig(clk)
	cfg.QueueDepth = 4
	cfg.QueueLen = 8
	cfg.Season = simrun.DefaultSeasoning()
	s := testServer(t, cfg, nil)

	reqs := []Request{readReq(1, 0), writeReq(1, 1), writeReq(1, 2), readReq(1, 3)}
	var handles []*Pending
	for _, req := range reqs {
		p, err := s.SubmitAsync(req)
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, p)
	}

	td, err := s.DrainTenant(1)
	if err != nil {
		t.Fatal(err)
	}
	// The quiesce completes everything admitted: no waiter may see an error.
	ctx := context.Background()
	for i, p := range handles {
		if _, err := s.Wait(ctx, p); err != nil {
			t.Errorf("request %d failed across tenant drain: %v", i, err)
		}
	}
	if got := len(td.Records); got != len(reqs) {
		t.Fatalf("handoff log has %d records, want %d", got, len(reqs))
	}
	for i, rec := range td.Records {
		want := reqs[i].Record(rec.Time)
		if rec != want {
			t.Errorf("record %d = %+v, want %+v", i, rec, want)
		}
	}
	if td.CompletedReads != 2 || td.CompletedWrites != 2 {
		t.Errorf("completed %d reads / %d writes, want 2/2", td.CompletedReads, td.CompletedWrites)
	}
	if td.Replayed != 0 {
		t.Errorf("replayed = %d on a never-migrated tenant", td.Replayed)
	}

	// Tenant 1 only ever touched the device, so the node's whole-drain
	// state must equal a batch replay of the handoff log alone.
	drainRes := s.Drain()
	runner := simrun.NewRunner(simrun.WithProbe(simrun.NewCounterProbe(cfg.Device)))
	sess, err := runner.NewSession(simrun.Config{
		Device: cfg.Device, Options: cfg.Options, Season: cfg.Season,
	})
	if err != nil {
		t.Fatal(err)
	}
	replayRes, err := sess.Run(context.Background(), trace.Trace(td.Records))
	if err != nil {
		t.Fatal(err)
	}
	if drainRes.Makespan != replayRes.Makespan {
		t.Errorf("makespan %v != replay %v", drainRes.Makespan, replayRes.Makespan)
	}
	if drainRes.FTL != replayRes.FTL {
		t.Errorf("FTL counters %+v != replay %+v", drainRes.FTL, replayRes.FTL)
	}
	if !reflect.DeepEqual(drainRes.Device, replayRes.Device) {
		t.Errorf("device latency %+v != replay %+v", drainRes.Device, replayRes.Device)
	}
	if drainRes.Conflicts != replayRes.Conflicts {
		t.Errorf("conflicts %d != replay %d", drainRes.Conflicts, replayRes.Conflicts)
	}
}

// TestDrainTenantIsolatesTenant: draining tenant 1 gates exactly tenant 1 —
// its submissions reject with ErrTenantMigrating, other tenants keep
// serving, readiness reflects the parked tenant, and ReleaseTenant restores
// everything.
func TestDrainTenantIsolatesTenant(t *testing.T) {
	clk := newFakeClock()
	s := testServer(t, testConfig(clk), nil)
	defer s.Drain()

	if !s.Ready() {
		t.Fatal("fresh node not ready")
	}
	if _, err := s.SubmitAsync(readReq(1, 0)); err != nil {
		t.Fatal(err)
	}
	td, err := s.DrainTenant(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(td.Records) != 1 {
		t.Fatalf("handoff log has %d records, want 1", len(td.Records))
	}
	if !s.TenantParked(1) {
		t.Error("tenant 1 not parked after DrainTenant")
	}
	if s.Ready() {
		t.Error("node ready with a parked tenant")
	}
	if _, err := s.SubmitAsync(readReq(1, 1)); !errors.Is(err, ErrTenantMigrating) {
		t.Errorf("parked tenant admission error = %v, want ErrTenantMigrating", err)
	}
	if _, err := s.DrainTenant(1); !errors.Is(err, ErrTenantMigrating) {
		t.Errorf("second DrainTenant error = %v, want ErrTenantMigrating", err)
	}
	// Unrelated tenants are untouched.
	p, err := s.SubmitAsync(readReq(0, 0))
	if err != nil {
		t.Fatalf("tenant 0 rejected during tenant 1 drain: %v", err)
	}
	_ = p

	if err := s.ReleaseTenant(1); err != nil {
		t.Fatal(err)
	}
	if !s.Ready() {
		t.Error("node not ready after release")
	}
	if _, err := s.SubmitAsync(readReq(1, 2)); err != nil {
		t.Errorf("released tenant rejected: %v", err)
	}
	if err := s.ReleaseTenant(1); err == nil {
		t.Error("releasing a non-parked tenant succeeded")
	}
}

// TestDrainTenantRequiresLog: a node built with DisableTenantLog cannot
// hand off tenants.
func TestDrainTenantRequiresLog(t *testing.T) {
	clk := newFakeClock()
	cfg := testConfig(clk)
	cfg.DisableTenantLog = true
	s := testServer(t, cfg, nil)
	defer s.Drain()
	if _, err := s.DrainTenant(0); !errors.Is(err, ErrNoTenantLog) {
		t.Errorf("DrainTenant with log disabled = %v, want ErrNoTenantLog", err)
	}
}

// TestTenantHandoffPreservesReplayInvariant walks the full migration data
// path: drain on a source node, replay on a target node, serve live traffic
// on the target, then verify the invariant holds on the target too — its
// final drain state equals a batch replay of its own per-tenant log (the
// replayed handoff records at their replay arrivals plus the live ones).
func TestTenantHandoffPreservesReplayInvariant(t *testing.T) {
	clk := newFakeClock()
	cfg := testConfig(clk)
	cfg.QueueDepth = 4
	cfg.QueueLen = 8
	cfg.Season = simrun.DefaultSeasoning()

	source := testServer(t, cfg, nil)
	for _, req := range []Request{writeReq(1, 0), readReq(1, 1), writeReq(1, 2)} {
		if _, err := source.SubmitAsync(req); err != nil {
			t.Fatal(err)
		}
	}
	td, err := source.DrainTenant(1)
	if err != nil {
		t.Fatal(err)
	}
	source.Drain()

	target := testServer(t, cfg, nil)
	done, err := target.ReplayTenant(1, td.Records)
	if err != nil {
		t.Fatal(err)
	}
	if done != len(td.Records) {
		t.Fatalf("replayed %d of %d records", done, len(td.Records))
	}
	if !target.Ready() {
		t.Error("target not ready after handoff completed")
	}

	// Live traffic lands on the migrated tenant's new home.
	live := []Request{readReq(1, 3), writeReq(1, 4)}
	ctx := context.Background()
	for _, req := range live {
		p, err := target.SubmitAsync(req)
		if err != nil {
			t.Fatalf("live submission after handoff: %v", err)
		}
		_ = p
		_ = ctx
	}

	td2, err := target.DrainTenant(1)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(td2.Records), len(td.Records)+len(live); got != want {
		t.Fatalf("target log has %d records, want %d (replayed + live)", got, want)
	}
	if td2.Replayed != uint64(len(td.Records)) {
		t.Errorf("target replayed = %d, want %d", td2.Replayed, len(td.Records))
	}
	// Client completions on the target count only the live requests: the
	// replay produced none, so nothing is double-counted across nodes.
	if got := td2.CompletedReads + td2.CompletedWrites; got != uint64(len(live)) {
		t.Errorf("target completed %d client requests, want %d", got, len(live))
	}

	drainRes := target.Drain()
	runner := simrun.NewRunner(simrun.WithProbe(simrun.NewCounterProbe(cfg.Device)))
	sess, err := runner.NewSession(simrun.Config{
		Device: cfg.Device, Options: cfg.Options, Season: cfg.Season,
	})
	if err != nil {
		t.Fatal(err)
	}
	replayRes, err := sess.Run(context.Background(), trace.Trace(td2.Records))
	if err != nil {
		t.Fatal(err)
	}
	if drainRes.Makespan != replayRes.Makespan {
		t.Errorf("makespan %v != replay %v", drainRes.Makespan, replayRes.Makespan)
	}
	if drainRes.FTL != replayRes.FTL {
		t.Errorf("FTL counters %+v != replay %+v", drainRes.FTL, replayRes.FTL)
	}
	if !reflect.DeepEqual(drainRes.Device, replayRes.Device) {
		t.Errorf("device latency %+v != replay %+v", drainRes.Device, replayRes.Device)
	}
	if drainRes.Conflicts != replayRes.Conflicts {
		t.Errorf("conflicts %d != replay %d", drainRes.Conflicts, replayRes.Conflicts)
	}
}
