package serve

import (
	"fmt"

	"ssdkeeper/internal/trace"
)

// Hand-rolled JSON request parser for the /io hot path. encoding/json costs
// one Decoder allocation plus reflection per request; this scanner decodes
// the five known fields of a jsonRequest with zero allocations on every
// accepted input and on all error paths that matter.
//
// Compatibility contract with encoding/json (checked by unit tests and a
// differential fuzz target against decodeJSONRequestStd):
//
//   - any input this parser ACCEPTS, the stdlib decoder accepts with an
//     identical Request — always;
//   - any all-ASCII, escape-free input the stdlib accepts, this parser
//     accepts too. Inputs using backslash escapes in object keys, or
//     non-ASCII key spellings that only match under Unicode case folding,
//     may be rejected here even though the stdlib tolerates them; the fuzz
//     target carves exactly that set out.
//
// Matched stdlib behaviors: unknown fields rejected (DisallowUnknownFields),
// ASCII case-insensitive key matching, null as a field no-op, last-wins
// duplicate keys, JSON number grammar (leading zeros rejected, '+' sign
// rejected, fraction/exponent rejected for integer fields), escape decoding
// inside the op string, and trailing bytes after the closing brace ignored.

// jsonScanner walks one JSON object without allocating. strBuf backs escape
// decoding for the op value; escape-free strings are sliced from the input.
type jsonScanner struct {
	b      []byte
	i      int
	strBuf [16]byte
}

// DecodeJSONRequest parses one JSON-encoded request. Unknown fields are
// rejected so client typos fail loudly instead of silently defaulting. The
// decode allocates nothing: this is the /io admission hot path.
func DecodeJSONRequest(data []byte) (Request, error) {
	var s jsonScanner
	s.b = data
	s.skipWS()
	if !s.consume('{') {
		return Request{}, s.errHere("expected '{'")
	}
	var req Request
	var opBytes []byte
	s.skipWS()
	if !s.consume('}') {
		for {
			s.skipWS()
			key, err := s.scanKey()
			if err != nil {
				return Request{}, err
			}
			s.skipWS()
			if !s.consume(':') {
				return Request{}, s.errHere("expected ':' after object key")
			}
			s.skipWS()
			switch {
			case keyFold(key, "tenant"):
				n, null, err := s.scanInt()
				if err != nil {
					return Request{}, err
				}
				if !null {
					req.Tenant = int(n)
				}
			case keyFold(key, "op"):
				ob, null, err := s.scanString()
				if err != nil {
					return Request{}, err
				}
				if !null {
					opBytes = ob
				}
			case keyFold(key, "offset"):
				n, null, err := s.scanInt()
				if err != nil {
					return Request{}, err
				}
				if !null {
					req.Offset = n
				}
			case keyFold(key, "size"):
				n, null, err := s.scanInt()
				if err != nil {
					return Request{}, err
				}
				if !null {
					req.Size = int(n)
				}
			case keyFold(key, "key"):
				u, null, err := s.scanUint()
				if err != nil {
					return Request{}, err
				}
				if !null {
					req.Key = u
				}
			default:
				return Request{}, fmt.Errorf("serve: bad JSON request: json: unknown field %q", string(key))
			}
			s.skipWS()
			if s.consume(',') {
				continue
			}
			if s.consume('}') {
				break
			}
			return Request{}, s.errHere("expected ',' or '}' after object value")
		}
	}
	// Trailing bytes after the object are ignored, as json.Decoder.Decode
	// ignores them (it reads exactly one value from the stream).
	op, ok := opFromBytes(opBytes)
	if !ok {
		return Request{}, fmt.Errorf("serve: bad JSON request: unknown op %q", string(opBytes))
	}
	req.Op = op
	return req, nil
}

// skipWS advances past JSON insignificant whitespace.
func (s *jsonScanner) skipWS() {
	for s.i < len(s.b) {
		switch s.b[s.i] {
		case ' ', '\t', '\n', '\r':
			s.i++
		default:
			return
		}
	}
}

// consume advances past c if it is the next byte.
func (s *jsonScanner) consume(c byte) bool {
	if s.i < len(s.b) && s.b[s.i] == c {
		s.i++
		return true
	}
	return false
}

// lit advances past the literal token if it is next.
func (s *jsonScanner) lit(tok string) bool {
	if len(s.b)-s.i < len(tok) || string(s.b[s.i:s.i+len(tok)]) != tok {
		return false
	}
	s.i += len(tok)
	return true
}

// errHere reports a parse failure at the current offset.
func (s *jsonScanner) errHere(msg string) error {
	return fmt.Errorf("serve: bad JSON request: %s at offset %d", msg, s.i)
}

// scanKey scans an object key and returns it as a slice of the input.
// Escaped keys are rejected (the documented stdlib divergence): every key
// this decoder knows is plain ASCII, so escapes only spell unknown or
// pathological keys.
func (s *jsonScanner) scanKey() ([]byte, error) {
	if !s.consume('"') {
		return nil, s.errHere("expected object key")
	}
	start := s.i
	for s.i < len(s.b) {
		c := s.b[s.i]
		switch {
		case c == '"':
			key := s.b[start:s.i]
			s.i++
			return key, nil
		case c == '\\':
			return nil, s.errHere("escape sequences in object keys are not supported")
		case c < 0x20:
			return nil, s.errHere("control character in string")
		}
		s.i++
	}
	return nil, s.errHere("unterminated string")
}

// scanString scans a JSON string value (or null, reported via the second
// return). Escape-free strings are returned as a slice of the input; strings
// with escapes are decoded into the scanner's fixed buffer. A decoded value
// longer than that buffer cannot be a valid op spelling, so overflow is an
// error rather than an allocation.
func (s *jsonScanner) scanString() (_ []byte, isNull bool, _ error) {
	if s.lit("null") {
		return nil, true, nil
	}
	if !s.consume('"') {
		return nil, false, s.errHere("expected string")
	}
	start := s.i
	for s.i < len(s.b) {
		c := s.b[s.i]
		switch {
		case c == '"':
			v := s.b[start:s.i]
			s.i++
			return v, false, nil
		case c == '\\':
			return s.scanStringSlow(start)
		case c < 0x20:
			return nil, false, s.errHere("control character in string")
		}
		s.i++
	}
	return nil, false, s.errHere("unterminated string")
}

// scanStringSlow finishes a string that contains escapes, decoding into
// strBuf. s.i points at the first backslash; start is the opening content
// offset.
func (s *jsonScanner) scanStringSlow(start int) ([]byte, bool, error) {
	buf := s.strBuf[:0]
	if s.i-start > len(s.strBuf) {
		return nil, false, s.errHere("string too long for an op")
	}
	buf = append(buf, s.b[start:s.i]...)
	for s.i < len(s.b) {
		c := s.b[s.i]
		switch {
		case c == '"':
			s.i++
			return buf, false, nil
		case c == '\\':
			s.i++
			dec, err := s.scanEscape()
			if err != nil {
				return nil, false, err
			}
			var enc [4]byte
			n := encodeRune(enc[:], dec)
			if len(buf)+n > len(s.strBuf) {
				return nil, false, s.errHere("string too long for an op")
			}
			buf = append(buf, enc[:n]...)
		case c < 0x20:
			return nil, false, s.errHere("control character in string")
		default:
			if len(buf) >= len(s.strBuf) {
				return nil, false, s.errHere("string too long for an op")
			}
			buf = append(buf, c)
			s.i++
		}
	}
	return nil, false, s.errHere("unterminated string")
}

// scanEscape decodes one escape sequence; s.i points past the backslash.
func (s *jsonScanner) scanEscape() (rune, error) {
	if s.i >= len(s.b) {
		return 0, s.errHere("unterminated escape")
	}
	c := s.b[s.i]
	s.i++
	switch c {
	case '"', '\\', '/':
		return rune(c), nil
	case 'b':
		return '\b', nil
	case 'f':
		return '\f', nil
	case 'n':
		return '\n', nil
	case 'r':
		return '\r', nil
	case 't':
		return '\t', nil
	case 'u':
		if len(s.b)-s.i < 4 {
			return 0, s.errHere("truncated \\u escape")
		}
		var r rune
		for k := 0; k < 4; k++ {
			h := hexVal(s.b[s.i+k])
			if h < 0 {
				return 0, s.errHere("bad hex digit in \\u escape")
			}
			r = r<<4 | rune(h)
		}
		s.i += 4
		return r, nil
	}
	return 0, s.errHere("unknown escape character")
}

// hexVal returns the value of one hex digit, or -1.
func hexVal(c byte) int {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0')
	case c >= 'a' && c <= 'f':
		return int(c-'a') + 10
	case c >= 'A' && c <= 'F':
		return int(c-'A') + 10
	}
	return -1
}

// encodeRune is utf8.EncodeRune with the same out-of-range and surrogate
// handling (U+FFFD), inlined so the decode path stays dependency-light. Ops
// are ASCII, so any multi-byte result merely spells an op that will be
// rejected — exactly as the stdlib path rejects it.
func encodeRune(dst []byte, r rune) int {
	switch {
	case r < 0x80:
		dst[0] = byte(r)
		return 1
	case r < 0x800:
		dst[0] = 0xC0 | byte(r>>6)
		dst[1] = 0x80 | byte(r)&0x3F
		return 2
	case r >= 0xD800 && r <= 0xDFFF:
		// Unpaired surrogate half: U+FFFD, as encoding/json produces.
		dst[0], dst[1], dst[2] = 0xEF, 0xBF, 0xBD
		return 3
	default:
		dst[0] = 0xE0 | byte(r>>12)
		dst[1] = 0x80 | byte(r>>6)&0x3F
		dst[2] = 0x80 | byte(r)&0x3F
		return 3
	}
}

// scanInt scans a JSON integer (or null). The full JSON number grammar is
// enforced — no leading zeros, no '+' — and fraction or exponent forms are
// rejected the way encoding/json rejects them for integer struct fields.
func (s *jsonScanner) scanInt() (v int64, isNull bool, _ error) {
	if s.lit("null") {
		return 0, true, nil
	}
	neg := false
	if s.consume('-') {
		neg = true
	}
	// Accumulate negated so int64 min parses (mirrors parseIntBytes).
	var n int64
	digits, err := s.scanDigits(func(d int64) bool {
		if n < (minInt64+d)/10 {
			return false
		}
		n = n*10 - d
		return true
	})
	if err != nil {
		return 0, false, err
	}
	if digits == 0 {
		return 0, false, s.errHere("invalid number")
	}
	if neg {
		return n, false, nil
	}
	if n == minInt64 {
		return 0, false, s.errHere("number overflows int64")
	}
	return -n, false, nil
}

// scanUint scans a JSON non-negative integer (or null) for the uint64 key
// field; a '-' sign is rejected as encoding/json rejects negatives for
// unsigned fields.
func (s *jsonScanner) scanUint() (v uint64, isNull bool, _ error) {
	if s.lit("null") {
		return 0, true, nil
	}
	var n uint64
	digits, err := s.scanDigits(func(d int64) bool {
		if n > (^uint64(0)-uint64(d))/10 {
			return false
		}
		n = n*10 + uint64(d)
		return true
	})
	if err != nil {
		return 0, false, err
	}
	if digits == 0 {
		return 0, false, s.errHere("invalid number")
	}
	return n, false, nil
}

// scanDigits consumes the digit run of a number token, feeding each digit to
// acc (which reports overflow by returning false), and rejects leading zeros
// and fraction/exponent continuations.
func (s *jsonScanner) scanDigits(acc func(d int64) bool) (int, error) {
	start := s.i
	for s.i < len(s.b) && s.b[s.i] >= '0' && s.b[s.i] <= '9' {
		if !acc(int64(s.b[s.i] - '0')) {
			return 0, s.errHere("number overflows")
		}
		s.i++
	}
	digits := s.i - start
	if digits > 1 && s.b[start] == '0' {
		return 0, s.errHere("leading zeros are not valid JSON")
	}
	if s.i < len(s.b) {
		switch s.b[s.i] {
		case '.', 'e', 'E':
			return 0, s.errHere("non-integer number for integer field")
		}
	}
	return digits, nil
}

// keyFold reports whether key matches the lowercase field name under ASCII
// case folding — the same liberal key matching encoding/json applies.
func keyFold(key []byte, name string) bool {
	if len(key) != len(name) {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := key[i]
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
		}
		if c != name[i] {
			return false
		}
	}
	return true
}

// opFromBytes is parseOpBytes without error construction, so op bytes
// decoded into the scanner's fixed buffer never escape to the heap.
func opFromBytes(b []byte) (trace.Op, bool) {
	switch {
	case len(b) == 1 && (b[0] == 'R' || b[0] == 'r'):
		return trace.Read, true
	case len(b) == 1 && (b[0] == 'W' || b[0] == 'w'):
		return trace.Write, true
	case string(b) == "read" || string(b) == "Read" || string(b) == "READ":
		return trace.Read, true
	case string(b) == "write" || string(b) == "Write" || string(b) == "WRITE":
		return trace.Write, true
	}
	return 0, false
}
