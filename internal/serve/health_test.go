package serve

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"ssdkeeper/internal/nand"
	"ssdkeeper/internal/sim"
	"ssdkeeper/internal/simrun"
	"ssdkeeper/internal/trace"
)

// testFaultPlan injects a mid-run die failure plus a read-retry tail — the
// plan every drain-equivalence test below shares between the serving device
// and its batch-replay twin. The plan itself is read-only configuration; the
// per-device runtime state lives behind armFaults, so one pointer can arm
// both devices.
func testFaultPlan() *nand.FaultPlan {
	return &nand.FaultPlan{
		Seed: 7,
		Events: []nand.FaultEvent{
			{Kind: nand.FaultDieFail, At: 50 * sim.Microsecond, Channel: 1, Die: 0},
			{Kind: nand.FaultRetryTail, At: 0, Prob: 0.5},
		},
	}
}

// TestDrainMatchesBatchReplayWithFaults extends the drain-equivalence
// guarantee to a sick device: with a die failing mid-run and reads paying
// retry tails, a graceful drain must still leave the device bit-identical to
// a batch replay of the dispatched requests under the same fault plan.
func TestDrainMatchesBatchReplayWithFaults(t *testing.T) {
	clk := newFakeClock()
	cfg := testConfig(clk)
	cfg.QueueDepth = 4
	cfg.QueueLen = 8
	cfg.Season = simrun.DefaultSeasoning()
	cfg.Options.FaultPlan = testFaultPlan()
	s := testServer(t, cfg, nil)

	dispatched := []Request{readReq(0, 0), writeReq(0, 1), writeReq(0, 2), readReq(0, 3)}
	var handles []*Pending
	for _, req := range dispatched {
		p, err := s.SubmitAsync(req)
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, p)
	}
	for i := int64(4); i < 8; i++ {
		p, err := s.SubmitAsync(writeReq(0, i))
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, p)
	}

	drainRes := s.Drain()
	ctx := context.Background()
	for i, p := range handles {
		_, err := s.Wait(ctx, p)
		if i < 4 && err != nil {
			t.Errorf("dispatched request %d failed: %v", i, err)
		}
		if i >= 4 && !errors.Is(err, ErrDraining) {
			t.Errorf("queued request %d error = %v, want ErrDraining", i, err)
		}
	}

	var tr trace.Trace
	for _, req := range dispatched {
		tr = append(tr, req.Record(0))
	}
	runner := simrun.NewRunner(simrun.WithProbe(simrun.NewCounterProbe(cfg.Device)))
	sess, err := runner.NewSession(simrun.Config{
		Device: cfg.Device, Options: cfg.Options, Season: cfg.Season,
	})
	if err != nil {
		t.Fatal(err)
	}
	replayRes, err := sess.Run(context.Background(), tr)
	if err != nil {
		t.Fatal(err)
	}

	if drainRes.Makespan != replayRes.Makespan {
		t.Errorf("makespan %v != replay %v", drainRes.Makespan, replayRes.Makespan)
	}
	if drainRes.FTL != replayRes.FTL {
		t.Errorf("FTL counters %+v != replay %+v", drainRes.FTL, replayRes.FTL)
	}
	if !reflect.DeepEqual(drainRes.Device, replayRes.Device) {
		t.Errorf("device latency %+v != replay %+v", drainRes.Device, replayRes.Device)
	}
	if drainRes.Conflicts != replayRes.Conflicts {
		t.Errorf("conflicts %d != replay %d", drainRes.Conflicts, replayRes.Conflicts)
	}

	// The plan actually fired, identically on both devices.
	hs := s.Device().HealthSnapshot()
	if hs.DieFailures != 1 || hs.DeadDieFrac == 0 {
		t.Errorf("die failure missing from the drained device: %+v", hs)
	}
	if rhs := sess.Device().HealthSnapshot(); rhs != hs {
		t.Errorf("replay health %+v != drained health %+v", rhs, hs)
	}
}

// TestDrainTenantMatchesBatchReplayWithFaults: the tenant handoff log stays
// a faithful replay source when the device is failing under the tenant.
func TestDrainTenantMatchesBatchReplayWithFaults(t *testing.T) {
	clk := newFakeClock()
	cfg := testConfig(clk)
	cfg.QueueDepth = 4
	cfg.QueueLen = 8
	cfg.Season = simrun.DefaultSeasoning()
	cfg.Options.FaultPlan = testFaultPlan()
	s := testServer(t, cfg, nil)

	reqs := []Request{readReq(1, 0), writeReq(1, 1), writeReq(1, 2), readReq(1, 3)}
	var handles []*Pending
	for _, req := range reqs {
		p, err := s.SubmitAsync(req)
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, p)
	}

	td, err := s.DrainTenant(1)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i, p := range handles {
		if _, err := s.Wait(ctx, p); err != nil {
			t.Errorf("request %d failed across tenant drain: %v", i, err)
		}
	}
	if got := len(td.Records); got != len(reqs) {
		t.Fatalf("handoff log has %d records, want %d", got, len(reqs))
	}
	if td.CompletedReads != 2 || td.CompletedWrites != 2 {
		t.Errorf("completed %d reads / %d writes, want 2/2", td.CompletedReads, td.CompletedWrites)
	}

	drainRes := s.Drain()
	runner := simrun.NewRunner(simrun.WithProbe(simrun.NewCounterProbe(cfg.Device)))
	sess, err := runner.NewSession(simrun.Config{
		Device: cfg.Device, Options: cfg.Options, Season: cfg.Season,
	})
	if err != nil {
		t.Fatal(err)
	}
	replayRes, err := sess.Run(context.Background(), trace.Trace(td.Records))
	if err != nil {
		t.Fatal(err)
	}
	if drainRes.Makespan != replayRes.Makespan {
		t.Errorf("makespan %v != replay %v", drainRes.Makespan, replayRes.Makespan)
	}
	if drainRes.FTL != replayRes.FTL {
		t.Errorf("FTL counters %+v != replay %+v", drainRes.FTL, replayRes.FTL)
	}
	if !reflect.DeepEqual(drainRes.Device, replayRes.Device) {
		t.Errorf("device latency %+v != replay %+v", drainRes.Device, replayRes.Device)
	}
	if drainRes.Conflicts != replayRes.Conflicts {
		t.Errorf("conflicts %d != replay %d", drainRes.Conflicts, replayRes.Conflicts)
	}
}

// TestAuditHealthyNode: a fault-free node audits at a perfect score and
// never degrades.
func TestAuditHealthyNode(t *testing.T) {
	clk := newFakeClock()
	s := testServer(t, testConfig(clk), nil)
	defer s.Drain()
	if got := s.Audit(); got != 1.0 {
		t.Errorf("healthy node health score %v, want 1.0", got)
	}
	if s.Degraded() {
		t.Error("healthy node degraded")
	}
	if !s.Ready() {
		t.Error("healthy node not ready")
	}
}

// TestAuditorFlipsDegraded runs the auditor loop against live shards (this
// test is the -race exercise for the sweep): a die failure drops the worst
// shard score below the threshold, the wall-clock auditor notices without
// any explicit Audit call, readiness flips to degraded, and the health
// counters land in /metrics.
func TestAuditorFlipsDegraded(t *testing.T) {
	clk := newFakeClock()
	cfg := testConfig(clk)
	cfg.Options.FaultPlan = &nand.FaultPlan{
		Seed: 7,
		Events: []nand.FaultEvent{
			{Kind: nand.FaultDieFail, At: sim.Millisecond, Channel: 0, Die: 0},
		},
	}
	cfg.AuditEvery = 2 * time.Millisecond
	// EvalConfig has 16 dies; one failure scores 1 - 1/16 = 0.9375.
	cfg.DegradedScore = 0.95
	var audited []string
	var auditedMu chan struct{} // buffered-1 semaphore: AuditLog may race the test goroutine
	auditedMu = make(chan struct{}, 1)
	auditedMu <- struct{}{}
	cfg.AuditLog = func(format string, args ...interface{}) {
		<-auditedMu
		audited = append(audited, format)
		auditedMu <- struct{}{}
	}
	s := testServer(t, cfg, nil)
	s.Start()
	defer s.Drain()

	var handles []*Pending
	for i := int64(0); i < 4; i++ {
		p, err := s.SubmitAsync(readReq(0, i))
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, p)
	}
	// Carry simulated time past the failure; the audit sweep's snapshot
	// advances the engine to the wall target, firing the fault event.
	clk.Advance(100 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for i, p := range handles {
		if _, err := s.Wait(ctx, p); err != nil {
			t.Fatalf("request %d failed: %v", i, err)
		}
	}

	deadline := time.Now().Add(10 * time.Second)
	for !s.Degraded() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if !s.Degraded() {
		t.Fatal("auditor never flipped the node degraded")
	}
	if s.Ready() {
		t.Error("degraded node still reports ready")
	}
	if got := s.Audit(); got >= cfg.DegradedScore {
		t.Errorf("health score %v, want below threshold %v", got, cfg.DegradedScore)
	}
	<-auditedMu
	logged := len(audited)
	auditedMu <- struct{}{}
	if logged != 1 {
		t.Errorf("degraded transition logged %d times, want exactly once", logged)
	}

	ts := httptest.NewServer(s.Handler(time.Second))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/readyz status %d, want 503", resp.StatusCode)
	}
	if !strings.Contains(string(body), "degraded") {
		t.Errorf("/readyz body %q does not name the degraded state", body)
	}

	var buf bytes.Buffer
	s.WriteMetrics(&buf)
	metrics := buf.String()
	for _, want := range []string{
		"ssdkeeper_die_failures_total 1",
		"ssdkeeper_degraded 1",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if !strings.Contains(metrics, "ssdkeeper_health_score 0.9") {
		t.Errorf("metrics health score not in the degraded band:\n%s", metrics)
	}
}
