package serve

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ssdkeeper/internal/ftl"
	"ssdkeeper/internal/keeper"
	"ssdkeeper/internal/policy"
	"ssdkeeper/internal/sim"
	"ssdkeeper/internal/ssd"
	"ssdkeeper/internal/stats"
)

// Node is the transport-free serving core: a stable-hash router over
// ShardCount independent device shards, with per-tenant admission, online
// keeper controllers, and per-tenant lifecycle (drain, handoff replay,
// release). It knows nothing about HTTP — the Server front end binds it to
// the wire, and the fleet router drives remote nodes through that same
// binding. Build one with NewNode, start pacing with Start, submit with
// Submit, and stop it with Drain.
type Node struct {
	cfg    Config
	epoch  time.Time // wall anchor of sim time zero, shared by all shards
	shards []*shard

	started atomic.Bool
	startc  chan struct{} // closed by Start; shards arm their pacers on it

	draining atomic.Bool
	rejBad   atomic.Uint64
	rejDrain atomic.Uint64
	rejMigr  atomic.Uint64

	// Auditor state: degraded flips once a shard's health score crosses the
	// configured threshold and holds the node out of readiness; the loop
	// goroutine (armed by Start when AuditEvery > 0) stops at Drain.
	degraded     atomic.Bool
	auditRunning atomic.Bool
	auditStop    chan struct{}
	auditDone    chan struct{}
	auditOnce    sync.Once

	// gates is the per-tenant admission lifecycle (tenantActive /
	// tenantDraining / tenantParked); parked counts the non-active gates so
	// readiness is one atomic load.
	gates  []atomic.Int32
	parked atomic.Int32

	// ksrc is the keeper's policy source (nil without a keeper): /metrics
	// reads the published active/shadow versions from it, and the reload
	// surface swaps providers through it.
	ksrc *policy.Source

	errMu     sync.Mutex
	submitErr error // first device submit failure; poisons the node

	drainMu  sync.Mutex
	drained  bool
	perShard []ssd.Result
	merged   ssd.Result
}

// NewNode builds a node over ShardCount fresh seasoned shards. k (may be
// nil) enables the online keeper — one controller per shard over the shared
// model; its device geometry must match cfg.Device so channel strategies
// bind onto the same channel count.
func NewNode(cfg Config, k *keeper.Keeper) (*Node, error) {
	cfg.fillDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if k != nil && k.Config().Device != cfg.Device {
		return nil, fmt.Errorf("serve: keeper geometry %+v differs from server geometry %+v",
			k.Config().Device, cfg.Device)
	}
	n := &Node{
		cfg:       cfg,
		epoch:     cfg.Now(), // sim time zero is the construction instant
		startc:    make(chan struct{}),
		gates:     make([]atomic.Int32, cfg.Tenants),
		auditStop: make(chan struct{}),
		auditDone: make(chan struct{}),
	}
	if k != nil {
		n.ksrc = k.Source()
	}
	for i := 0; i < cfg.ShardCount; i++ {
		sd, err := newShard(i, n, k)
		if err != nil {
			for _, prev := range n.shards {
				prev.sendMu.Lock()
				prev.closed = true
				prev.sendMu.Unlock()
				close(prev.stop)
				<-prev.done
			}
			return nil, err
		}
		n.shards = append(n.shards, sd)
	}
	return n, nil
}

// Start arms the shard pacers. (Simulated time zero was anchored when the
// node was built; an un-started node still paces correctly on every entry
// point, it just never advances between requests on its own.)
func (n *Node) Start() {
	if n.started.CompareAndSwap(false, true) {
		close(n.startc)
		if n.cfg.AuditEvery > 0 {
			n.auditRunning.Store(true)
			go n.auditLoop()
		}
	}
}

// wallSim maps a wall instant to its simulated time under the pacing model.
func (n *Node) wallSim(t time.Time) sim.Time {
	d := t.Sub(n.epoch)
	if d < 0 {
		return 0
	}
	return sim.Time(float64(d) * n.cfg.Accel)
}

// wallTarget is the simulated time the clock should be advanced to now.
func (n *Node) wallTarget() sim.Time { return n.wallSim(n.cfg.Now()) }

// wallUntil returns how far in the future (wall) the simulated instant at
// is due; non-positive means already due.
func (n *Node) wallUntil(at sim.Time) time.Duration {
	due := n.epoch.Add(time.Duration(float64(at) / n.cfg.Accel))
	return due.Sub(n.cfg.Now())
}

// poison records the first device submit failure for /healthz.
func (n *Node) poison(err error) {
	n.errMu.Lock()
	if n.submitErr == nil {
		n.submitErr = err
	}
	n.errMu.Unlock()
}

// ShardCount returns the number of shards serving.
func (n *Node) ShardCount() int { return len(n.shards) }

// ShardFor returns the shard index the request routes to: stable hash of
// the tenant, mixed with the request key when one is set.
func (n *Node) ShardFor(req Request) int {
	return shardIndex(req.Tenant, req.Key, len(n.shards))
}

// SubmitAsync validates and admits a request, returning a handle to wait
// on. Admission stamps the request with the current wall-derived simulated
// time — it arrives "now" regardless of mailbox lag. Rejections
// (validation, backpressure, draining, tenant migration) are synchronous
// errors: the bounded slot is reserved with one atomic before the mailbox,
// so ErrQueueFull never needs a shard round trip.
func (n *Node) SubmitAsync(req Request) (*Pending, error) {
	return n.submit(req, nil)
}

// SubmitTo admits a request for callback delivery: instead of a handle to
// wait on, c.Complete receives the outcome exactly once, from the shard
// goroutine. A synchronous error means the request was rejected and c will
// never be called. This is the wire listener's path — completions fan into
// a connection's reply writer with no per-request goroutine and no waiter
// channel. Callback requests cannot be canceled; they resolve at completion
// or at drain.
func (n *Node) SubmitTo(req Request, c Completion) error {
	_, err := n.submit(req, c)
	return err
}

func (n *Node) submit(req Request, c Completion) (*Pending, error) {
	if err := req.Validate(n.cfg.Tenants, n.cfg.MaxBytes); err != nil {
		n.rejBad.Add(1)
		return nil, fmt.Errorf("serve: invalid request: %w", err)
	}
	if n.draining.Load() {
		n.rejDrain.Add(1)
		return nil, ErrDraining
	}
	if n.gates[req.Tenant].Load() != tenantActive {
		n.rejMigr.Add(1)
		return nil, ErrTenantMigrating
	}
	n.errMu.Lock()
	err := n.submitErr
	n.errMu.Unlock()
	if err != nil {
		return nil, err
	}
	sd := n.shards[shardIndex(req.Tenant, req.Key, len(n.shards))]
	ts := &sd.tenants[req.Tenant]
	bound := int64(n.cfg.QueueDepth + n.cfg.QueueLen)
	for {
		c := ts.occupancy.Load()
		if c >= bound {
			ts.rejFull.Add(1)
			return nil, ErrQueueFull
		}
		if ts.occupancy.CompareAndSwap(c, c+1) {
			break
		}
	}
	p := &Pending{
		req:    req,
		shard:  sd,
		stamp:  n.wallTarget(),
		notify: c,
	}
	if c == nil {
		p.done = make(chan outcome, 1)
	}
	ts.admitted[req.Op].Add(1)
	if !sd.enter() {
		// The shard closed between the draining check and here.
		ts.occupancy.Add(-1)
		ts.admitted[req.Op].Add(^uint64(0))
		n.rejDrain.Add(1)
		return nil, ErrDraining
	}
	sd.mailbox <- shardMsg{kind: msgSubmit, p: p}
	sd.leave()
	return p, nil
}

// Drain stops admission, rejects everything still queued, completes all
// in-flight device work on every shard (each shard's simulated time jumps
// to its last completion), and stops the shard goroutines. It returns the
// merged final device result; calling it twice returns the same snapshot.
// The guarantee holds per shard: after Drain, every dispatched request has
// been answered, every queued one was rejected with ErrDraining, and each
// shard's device counters equal those of a batch replay of its dispatched
// records (see DrainResults).
func (n *Node) Drain() ssd.Result {
	n.drainMu.Lock()
	defer n.drainMu.Unlock()
	if !n.drained {
		n.draining.Store(true)
		n.stopAuditor()
		n.perShard = make([]ssd.Result, len(n.shards))
		// The drain message queues FIFO behind in-flight submissions, so
		// every admitted request is either dispatched or drain-rejected —
		// never lost.
		for i, sd := range n.shards {
			if r, ok := sd.send(msgDrain); ok {
				n.perShard[i] = r.res
			}
		}
		for _, sd := range n.shards {
			sd.sendMu.Lock()
			sd.closed = true
			sd.sendMu.Unlock()
			close(sd.stop)
			<-sd.done
		}
		n.merged = mergeResults(n.perShard)
		n.drained = true
	}
	return n.merged
}

// DrainResults drains (if not already drained) and returns the per-shard
// final results, indexed by shard. Shard i's result equals a batch replay
// of the records ShardFor routed to it that reached its device.
func (n *Node) DrainResults() []ssd.Result {
	n.Drain()
	n.drainMu.Lock()
	defer n.drainMu.Unlock()
	return append([]ssd.Result(nil), n.perShard...)
}

// mergeResults folds per-shard results into one serving-level summary:
// counters and latency accumulators sum, makespan is the max (shards run
// concurrently in wall time), bus/die stats concatenate in shard order, and
// fairness is recomputed as Jain's index over the merged per-tenant totals.
func mergeResults(rs []ssd.Result) ssd.Result {
	if len(rs) == 0 {
		return ssd.Result{}
	}
	if len(rs) == 1 {
		return rs[0]
	}
	var m ssd.Result
	m.PerTenant = make(map[int]stats.Latency)
	for _, r := range rs {
		if r.Makespan > m.Makespan {
			m.Makespan = r.Makespan
		}
		m.Requests += r.Requests
		m.Device.Merge(r.Device)
		for t, l := range r.PerTenant {
			cur := m.PerTenant[t]
			cur.Merge(l)
			m.PerTenant[t] = cur
		}
		m.BusStats = append(m.BusStats, r.BusStats...)
		m.DieStats = append(m.DieStats, r.DieStats...)
		m.FTL = addFTL(m.FTL, r.FTL)
		m.Conflicts += r.Conflicts
		m.ConflictWait += r.ConflictWait
	}
	m.Fairness = jainFairness(m.PerTenant)
	return m
}

func addFTL(a, b ftl.Counters) ftl.Counters {
	a.Writes += b.Writes
	a.Preloads += b.Preloads
	a.Invalidations += b.Invalidations
	a.GCRuns += b.GCRuns
	a.GCMovedPages += b.GCMovedPages
	a.GCErases += b.GCErases
	a.WLRuns += b.WLRuns
	a.WLMovedPages += b.WLMovedPages
	a.Mapped += b.Mapped
	return a
}

// jainFairness is Jain's index over the tenants' total latencies, the same
// definition the device collector uses for a single shard.
func jainFairness(per map[int]stats.Latency) float64 {
	var sum, sumsq float64
	count := 0
	for _, l := range per {
		x := float64(l.Read.Sum + l.Write.Sum)
		sum += x
		sumsq += x * x
		count++
	}
	if count == 0 || sumsq == 0 {
		return 1
	}
	return sum * sum / (float64(count) * sumsq)
}

// Draining reports whether Drain has begun.
func (n *Node) Draining() bool { return n.draining.Load() }

// Ready reports whether the node should receive new traffic: started or
// startable, not draining, not poisoned, not health-degraded, and with no
// tenant handoff in flight. Fleet membership keys off this (via /readyz),
// which is why it is stricter than liveness: a node mid-handoff or with a
// sick device is alive but not a placement target.
func (n *Node) Ready() bool {
	return !n.draining.Load() && n.Err() == nil && n.parked.Load() == 0 &&
		!n.degraded.Load()
}

// Err returns the first device submit failure, if any (surfaced by
// /healthz so orchestrators restart a poisoned node).
func (n *Node) Err() error {
	n.errMu.Lock()
	defer n.errMu.Unlock()
	return n.submitErr
}

// Device exposes shard 0's device for tests that inspect FTL state.
func (n *Node) Device() *ssd.Device { return n.shards[0].dev }

// Controller exposes shard 0's online keeper controller (nil without a
// keeper). Tests drive a single-shard node through it; multi-shard
// observability goes through the metrics snapshot.
func (n *Node) Controller() *keeper.Controller { return n.shards[0].ctrl }

// KeeperSwitches sums the online re-allocations across shards. Safe at any
// time; after Drain it reads the frozen final snapshots.
func (n *Node) KeeperSwitches() int {
	total := 0
	for _, sd := range n.shards {
		if r, ok := sd.send(msgSnapshot); ok {
			total += r.snap.switches
		} else if sd.final != nil {
			total += sd.final.switches
		}
	}
	return total
}

// TenantCompleted returns the number of client requests this node has
// completed for the tenant, summed across shards. Handoff replays are
// excluded — they are device-state transfer, not client completions — so a
// fleet can assert zero lost/duplicated completions by comparing the sum of
// this across nodes against the clients' success count.
func (n *Node) TenantCompleted(tenant int) uint64 {
	var total uint64
	for _, sd := range n.shards {
		snap := sd.final
		if r, ok := sd.send(msgSnapshot); ok {
			snap = r.snap
		}
		if snap != nil && tenant >= 0 && tenant < len(snap.tenants) {
			total += snap.tenants[tenant].completed[0] + snap.tenants[tenant].completed[1]
		}
	}
	return total
}

// SimNow returns the current simulated time — the max across shards —
// advancing each shard to the wall target first. The mailbox round trip
// doubles as a barrier: every submission enqueued before this call has been
// processed when it returns.
func (n *Node) SimNow() sim.Time {
	var now sim.Time
	for _, sd := range n.shards {
		r, ok := sd.send(msgAdvance)
		if !ok {
			r = shardReply{now: sd.final.simNow}
		}
		if r.now > now {
			now = r.now
		}
	}
	return now
}
