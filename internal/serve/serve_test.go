package serve

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"ssdkeeper/internal/alloc"
	"ssdkeeper/internal/features"
	"ssdkeeper/internal/keeper"
	"ssdkeeper/internal/nand"
	"ssdkeeper/internal/nn"
	"ssdkeeper/internal/sim"
	"ssdkeeper/internal/simrun"
	"ssdkeeper/internal/ssd"
	"ssdkeeper/internal/trace"
)

// fakeClock is a manually advanced wall clock: with it, pacing is a pure
// function of the test's Advance calls and every run is deterministic.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func testConfig(clk *fakeClock) Config {
	return Config{
		Device:  nand.EvalConfig(),
		Options: ssd.DefaultOptions(),
		Now:     clk.Now,
	}
}

// testServer builds an un-started server (tests advance the clock by hand).
func testServer(t *testing.T, cfg Config, k *keeper.Keeper) *Server {
	t.Helper()
	s, err := New(cfg, k)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

const page = 16 * 1024 // EvalConfig page size

func readReq(tenant int, pageNo int64) Request {
	return Request{Tenant: tenant, Op: trace.Read, Offset: pageNo * page, Size: page}
}

func writeReq(tenant int, pageNo int64) Request {
	return Request{Tenant: tenant, Op: trace.Write, Offset: pageNo * page, Size: page}
}

func TestNewRejectsBadConfig(t *testing.T) {
	clk := newFakeClock()
	cfg := testConfig(clk)
	cfg.Accel = -1
	if _, err := New(cfg, nil); err == nil {
		t.Error("negative accel accepted")
	}
	cfg = testConfig(clk)
	cfg.QueueLen = -1
	if _, err := New(cfg, nil); err == nil {
		t.Error("negative queue length accepted")
	}
	cfg = testConfig(clk)
	cfg.Device.Channels = 0
	if _, err := New(cfg, nil); err == nil {
		t.Error("invalid device geometry accepted")
	}
}

func TestNewRejectsKeeperGeometryMismatch(t *testing.T) {
	clk := newFakeClock()
	cfg := testConfig(clk)
	kCfg := keeperConfig()
	kCfg.Device.ChipsPerChannel = 4
	k, err := keeper.New(kCfg, forcedModel(t, len(kCfg.Strategies), 0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(cfg, k); err == nil {
		t.Error("keeper with different device geometry accepted")
	}
}

func TestSubmitCompletesWithClockAdvance(t *testing.T) {
	clk := newFakeClock()
	s := testServer(t, testConfig(clk), nil)
	defer s.Drain()

	p, err := s.SubmitAsync(readReq(0, 3))
	if err != nil {
		t.Fatal(err)
	}
	clk.Advance(100 * time.Millisecond)
	if now := s.SimNow(); now != 100*sim.Millisecond {
		t.Errorf("sim time %v after 100ms wall at accel 1, want 100ms", now)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	resp, err := s.Wait(ctx, p)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Latency <= 0 {
		t.Errorf("latency %v, want > 0", resp.Latency)
	}
	if resp.At <= 0 || resp.At > 100*sim.Millisecond {
		t.Errorf("completion at %v, want within the advanced window", resp.At)
	}
}

func TestAccelScalesSimTime(t *testing.T) {
	clk := newFakeClock()
	cfg := testConfig(clk)
	cfg.Accel = 8
	s := testServer(t, cfg, nil)
	defer s.Drain()
	clk.Advance(10 * time.Millisecond)
	if now := s.SimNow(); now != 80*sim.Millisecond {
		t.Errorf("sim time %v after 10ms wall at accel 8, want 80ms", now)
	}
}

func TestValidationRejects(t *testing.T) {
	clk := newFakeClock()
	s := testServer(t, testConfig(clk), nil)
	defer s.Drain()
	bad := []Request{
		{Tenant: -1, Op: trace.Read, Size: page},
		{Tenant: 99, Op: trace.Read, Size: page},
		{Tenant: 0, Op: trace.Read, Size: 0},
		{Tenant: 0, Op: trace.Read, Size: maxRequestBytes + 1},
		{Tenant: 0, Op: trace.Read, Offset: -page, Size: page},
		{Tenant: 0, Op: trace.Read, Offset: 64 << 20, Size: page},
	}
	for i, req := range bad {
		if _, err := s.SubmitAsync(req); err == nil {
			t.Errorf("bad request %d accepted: %+v", i, req)
		}
	}
	var buf strings.Builder
	s.WriteMetrics(&buf)
	if want := fmt.Sprintf(`reason="invalid"} %d`, len(bad)); !strings.Contains(buf.String(), want) {
		t.Errorf("metrics missing %q", want)
	}
}

func TestBackpressurePerTenant(t *testing.T) {
	clk := newFakeClock()
	cfg := testConfig(clk)
	cfg.QueueDepth = 2
	cfg.QueueLen = 2
	s := testServer(t, cfg, nil)

	// The clock never advances, so nothing completes: tenant 0's capacity is
	// exactly QueueDepth in-flight + QueueLen queued.
	var accepted []*Pending
	for i := 0; i < 4; i++ {
		p, err := s.SubmitAsync(writeReq(0, int64(i)))
		if err != nil {
			t.Fatalf("request %d rejected: %v", i, err)
		}
		accepted = append(accepted, p)
	}
	if _, err := s.SubmitAsync(writeReq(0, 4)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overload error = %v, want ErrQueueFull", err)
	}
	// Backpressure is per tenant: tenant 1 is still admissible.
	p1, err := s.SubmitAsync(writeReq(1, 0))
	if err != nil {
		t.Fatalf("tenant 1 rejected while tenant 0 is full: %v", err)
	}
	accepted = append(accepted, p1)

	// Drain answers everything: in-flight requests complete, queued ones are
	// rejected with ErrDraining.
	s.Drain()
	ctx := context.Background()
	var completed, drained int
	for _, p := range accepted {
		_, err := s.Wait(ctx, p)
		switch {
		case err == nil:
			completed++
		case errors.Is(err, ErrDraining):
			drained++
		default:
			t.Errorf("unexpected wait error: %v", err)
		}
	}
	// Tenant 0: 2 in flight + 2 queued; tenant 1: 1 in flight.
	if completed != 3 || drained != 2 {
		t.Errorf("completed=%d drained=%d, want 3 and 2", completed, drained)
	}
	if _, err := s.SubmitAsync(writeReq(1, 1)); !errors.Is(err, ErrDraining) {
		t.Errorf("post-drain submit error = %v, want ErrDraining", err)
	}
}

func TestWaitCancelFreesQueueSlot(t *testing.T) {
	clk := newFakeClock()
	cfg := testConfig(clk)
	cfg.QueueDepth = 1
	cfg.QueueLen = 1
	s := testServer(t, cfg, nil)
	defer s.Drain()

	if _, err := s.SubmitAsync(writeReq(0, 0)); err != nil {
		t.Fatal(err)
	}
	queued, err := s.SubmitAsync(writeReq(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.SubmitAsync(writeReq(0, 2)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submit error = %v, want ErrQueueFull", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Wait(ctx, queued); !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled wait error = %v, want ErrCanceled", err)
	}
	// The canceled request's queue slot is free again.
	if _, err := s.SubmitAsync(writeReq(0, 3)); err != nil {
		t.Errorf("submit after cancel rejected: %v", err)
	}
}

// TestDrainMatchesBatchReplay is the drain-equivalence guarantee: after a
// graceful drain, the device's final state equals a batch replay of exactly
// the dispatched requests at their admission times. Queued-but-undispatched
// requests were rejected and must leave no trace on the device.
func TestDrainMatchesBatchReplay(t *testing.T) {
	clk := newFakeClock()
	cfg := testConfig(clk)
	cfg.QueueDepth = 4
	cfg.QueueLen = 8
	cfg.Season = simrun.DefaultSeasoning()
	s := testServer(t, cfg, nil)

	// Phase 1: four requests dispatched immediately at sim time 0.
	dispatched := []Request{readReq(0, 0), writeReq(0, 1), writeReq(0, 2), readReq(0, 3)}
	var handles []*Pending
	for _, req := range dispatched {
		p, err := s.SubmitAsync(req)
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, p)
	}
	// Phase 2: with the clock frozen nothing completes, so four more only
	// queue; they must not reach the device.
	for i := int64(4); i < 8; i++ {
		p, err := s.SubmitAsync(writeReq(0, i))
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, p)
	}

	drainRes := s.Drain()
	ctx := context.Background()
	for i, p := range handles {
		_, err := s.Wait(ctx, p)
		if i < 4 && err != nil {
			t.Errorf("dispatched request %d failed: %v", i, err)
		}
		if i >= 4 && !errors.Is(err, ErrDraining) {
			t.Errorf("queued request %d error = %v, want ErrDraining", i, err)
		}
	}

	// Batch replay of the dispatched four at their admission times on an
	// identically seasoned fresh device.
	var tr trace.Trace
	for _, req := range dispatched {
		tr = append(tr, req.Record(0))
	}
	runner := simrun.NewRunner(simrun.WithProbe(simrun.NewCounterProbe(cfg.Device)))
	sess, err := runner.NewSession(simrun.Config{
		Device: cfg.Device, Options: cfg.Options, Season: cfg.Season,
	})
	if err != nil {
		t.Fatal(err)
	}
	replayRes, err := sess.Run(context.Background(), tr)
	if err != nil {
		t.Fatal(err)
	}

	if drainRes.Makespan != replayRes.Makespan {
		t.Errorf("makespan %v != replay %v", drainRes.Makespan, replayRes.Makespan)
	}
	if drainRes.FTL != replayRes.FTL {
		t.Errorf("FTL counters %+v != replay %+v", drainRes.FTL, replayRes.FTL)
	}
	if !reflect.DeepEqual(drainRes.Device, replayRes.Device) {
		t.Errorf("device latency %+v != replay %+v", drainRes.Device, replayRes.Device)
	}
	if drainRes.Conflicts != replayRes.Conflicts {
		t.Errorf("conflicts %d != replay %d", drainRes.Conflicts, replayRes.Conflicts)
	}
}

func TestDrainIdempotent(t *testing.T) {
	clk := newFakeClock()
	s := testServer(t, testConfig(clk), nil)
	s.Start() // exercise pacer shutdown too
	if _, err := s.SubmitAsync(readReq(0, 0)); err != nil {
		t.Fatal(err)
	}
	first := s.Drain()
	second := s.Drain()
	if first.Makespan != second.Makespan || first.FTL != second.FTL {
		t.Errorf("second drain snapshot differs: %+v vs %+v", first, second)
	}
	if !s.Draining() {
		t.Error("Draining() false after Drain")
	}
}

// keeperConfig mirrors the keeper package's test configuration.
func keeperConfig() keeper.Config {
	return keeper.Config{
		Device:  nand.EvalConfig(),
		Options: ssd.DefaultOptions(),
		Strategies: []alloc.Strategy{
			{Kind: alloc.Shared},
			{Kind: alloc.Isolated},
			{Kind: alloc.TwoGroup, WriteChannels: 6},
		},
		SaturationIOPS: 16000,
		Window:         50 * sim.Millisecond,
		AdaptEvery:     50 * sim.Millisecond,
	}
}

// forcedModel always predicts the given class (output bias driven high).
func forcedModel(t *testing.T, classes, class int) *nn.Network {
	t.Helper()
	net, err := nn.NewMLP([]int{features.Dim, 8, classes}, nn.Logistic{}, 5)
	if err != nil {
		t.Fatal(err)
	}
	out := net.Layers[len(net.Layers)-1]
	for i := range out.W {
		out.W[i] = 0
	}
	for i := range out.B {
		out.B[i] = 0
	}
	out.B[class] = 100
	return net
}

// TestOnlineKeeperEpochFires is the tentpole behavior: live arrivals feed
// the sliding-window collector, and once the window elapses in paced
// simulated time the keeper re-binds channels online.
func TestOnlineKeeperEpochFires(t *testing.T) {
	clk := newFakeClock()
	cfg := testConfig(clk)
	kCfg := keeperConfig()
	k, err := keeper.New(kCfg, forcedModel(t, len(kCfg.Strategies), 1))
	if err != nil {
		t.Fatal(err)
	}
	s := testServer(t, cfg, k)
	defer s.Drain()

	// 40 requests across all four tenants over the first 40ms of sim time.
	for i := 0; i < 40; i++ {
		req := readReq(i%4, int64(i))
		if i%3 == 0 {
			req.Op = trace.Write
		}
		if _, err := s.SubmitAsync(req); err != nil {
			t.Fatal(err)
		}
		clk.Advance(time.Millisecond)
	}
	if got := s.Controller().SwitchCount(); got != 0 {
		t.Fatalf("switched %d times before the window elapsed", got)
	}
	// Cross the 50ms window; the pure clock tick (no arrival) must fire the
	// adaptation epoch.
	clk.Advance(20 * time.Millisecond)
	s.SimNow()
	if got := s.Controller().SwitchCount(); got != 1 {
		t.Fatalf("switches after window = %d, want 1", got)
	}
	sw, ok := s.Controller().LastSwitch()
	if !ok || sw.Index != 1 {
		t.Errorf("last switch = %+v (ok=%v), want forced class 1", sw, ok)
	}
	if sw.At != kCfg.Window {
		t.Errorf("switch at %v, want %v", sw.At, kCfg.Window)
	}
	// Idle windows do not re-bind: advancing through two empty periods
	// leaves the switch count alone.
	clk.Advance(100 * time.Millisecond)
	s.SimNow()
	if got := s.Controller().SwitchCount(); got != 1 {
		t.Errorf("switches after idle periods = %d, want still 1", got)
	}
	// New traffic in the current window makes the next boundary fire again.
	for i := 0; i < 8; i++ {
		if _, err := s.SubmitAsync(writeReq(i%4, int64(100+i))); err != nil {
			t.Fatal(err)
		}
	}
	clk.Advance(50 * time.Millisecond)
	s.SimNow()
	if got := s.Controller().SwitchCount(); got != 2 {
		t.Errorf("switches after traffic resumed = %d, want 2", got)
	}

	var buf strings.Builder
	s.WriteMetrics(&buf)
	out := buf.String()
	for _, want := range []string{
		"ssdkeeper_keeper_switches_total 2",
		`ssdkeeper_keeper_strategy{name="Isolated"}`,
		"ssdkeeper_keeper_last_switch_sim_seconds",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestMetricsRendering(t *testing.T) {
	clk := newFakeClock()
	s := testServer(t, testConfig(clk), nil)

	if _, err := s.SubmitAsync(readReq(0, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.SubmitAsync(writeReq(1, 0)); err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Second)
	s.SimNow()

	var buf strings.Builder
	s.WriteMetrics(&buf)
	out := buf.String()
	for _, want := range []string{
		"ssdkeeper_up 1",
		"ssdkeeper_sim_seconds 1",
		`ssdkeeper_admitted_total{tenant="0",op="read"} 1`,
		`ssdkeeper_completed_total{tenant="1",op="write"} 1`,
		`ssdkeeper_rejected_total{reason="queue_full"} 0`,
		`ssdkeeper_latency_seconds{tenant="0",op="read",quantile="0.99"}`,
		`ssdkeeper_sim_counter{name="sim.events"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	s.Drain()
	buf.Reset()
	s.WriteMetrics(&buf)
	if !strings.Contains(buf.String(), "ssdkeeper_up 0") {
		t.Error("draining server still reports up")
	}
}
