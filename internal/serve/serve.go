// Package serve is the serving layer: a long-running multi-tenant SSD
// service sharded over independent simulated devices. It is split into two
// layers. The transport-free node core (Node, node.go) owns the shard set,
// admission, the online keeper controllers, and the per-tenant lifecycle —
// including tenant-granular drain and handoff replay, the primitives the
// fleet tier (internal/fleet) composes into live migration. The thin front
// end (Server, http.go) binds a node to HTTP: tenants submit I/O as JSON or
// a compact line protocol, and the same binding lets another process (a
// fleet router, a load generator) drive the node remotely.
//
// Concurrency model: a simulation engine is single-goroutine by design, so
// each shard runs one goroutine that owns its engine, device, controller,
// and queues outright (see shard.go). Handlers validate, reserve a bounded
// admission slot with one atomic, and push the request into the shard's
// mailbox; they wait for completion on a per-request channel filled by the
// engine's completion callback. One shard wakeup drains a batch of
// submissions, so the cost of waking the actor amortizes across bursts, and
// no lock is ever held across the engine.
//
// Pacing model: simulated time is a linear image of wall time,
// sim = (wall - start) * Accel, shared by all shards. Each shard goroutine
// sleeps until the earlier of its next engine event's wall due time and one
// pacer tick, so completions surface on time without polling. Requests are
// stamped with the wall-derived sim time at admission and arrive at that
// stamp regardless of mailbox lag. Accel > 1 runs the devices faster than
// real time; Accel < 1 slows them down, which is how overload (and a
// device-bound, shard-scalable regime) is produced on demand.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ssdkeeper/internal/keeper"
	"ssdkeeper/internal/learn"
	"ssdkeeper/internal/nand"
	"ssdkeeper/internal/sim"
	"ssdkeeper/internal/simrun"
	"ssdkeeper/internal/ssd"
)

// Admission and lifecycle errors, mapped onto HTTP statuses by the handler
// layer (429, 503, 400).
var (
	// ErrQueueFull is backpressure: the tenant's admission queue is at its
	// bound. Clients should retry after backing off.
	ErrQueueFull = errors.New("serve: tenant queue full")
	// ErrDraining means the server is shutting down and admits nothing.
	ErrDraining = errors.New("serve: draining")
	// ErrCanceled means the client gave up before completion.
	ErrCanceled = errors.New("serve: request canceled")
	// ErrTenantMigrating means the tenant's admission gate is closed for a
	// drain/handoff: the tenant is being (or has been) migrated off this
	// node. Clients should retry against the fleet router, which re-routes
	// once the migration completes.
	ErrTenantMigrating = errors.New("serve: tenant migrating")
)

// Config parameterizes a Node (and the Server wrapping it).
type Config struct {
	Device  nand.Config
	Options ssd.Options
	Season  simrun.Seasoning

	// ShardCount is the number of independent device shards (default 1).
	// Each shard owns a full device/engine/keeper stack driven by its own
	// goroutine; tenants route to shards by stable hash, optionally spread
	// across all shards by a per-request key.
	ShardCount int
	// MailboxLen bounds each shard's submission mailbox (default 1024).
	MailboxLen int
	// BatchMax bounds how many mailbox messages one shard wakeup processes
	// before re-arming its pacing timer (default 256).
	BatchMax int

	// Tenants is the tenant-ID space served (default features.MaxTenants
	// via the keeper; 4). Requests outside it are rejected as invalid.
	Tenants int
	// QueueLen bounds each tenant's admission queue per shard (default
	// 64). A full queue rejects with ErrQueueFull instead of queueing
	// unboundedly.
	QueueLen int
	// QueueDepth bounds each tenant's in-device commands per shard
	// (default 32), the serving-layer analogue of hostif's per-queue depth.
	QueueDepth int
	// MaxBytes bounds each tenant's logical address space (default 64MB,
	// the working-set size the keeper's training mixes use).
	MaxBytes int64
	// Accel is the pacing factor: simulated nanoseconds per wall
	// nanosecond (default 1.0).
	Accel float64
	// TickEvery caps the pacer sleep (default 2ms wall). Completions wake
	// shards exactly when due via the engine's next-event time; the tick
	// bounds how stale keeper epochs and the wall target can get when no
	// events are pending.
	TickEvery time.Duration
	// Now is the wall clock (default time.Now); tests inject a manual
	// clock to make pacing deterministic.
	Now func() time.Time
	// DisableTenantLog turns off the per-tenant dispatched-record log.
	// The log is what DrainTenant hands to a migration target (and what
	// the drain==batch-replay invariant replays), so it is on by default;
	// a standalone node that will never migrate tenants can disable it to
	// cap memory at the cost of tenant-granular drain.
	DisableTenantLog bool

	// Sink, when set (and a keeper is serving), receives one learn.Sample
	// per shard adaptation epoch — the outcome feed of the continuous
	// learner. Offer is called from shard goroutines; implementations must
	// be concurrency-safe and fast. Nil keeps epochs sample-free at zero
	// cost.
	Sink learn.Sink
	// Learner, when set, is surfaced in /metrics (the node does not drive
	// it — the daemon's ticker or the sidecar's follow loop calls Step).
	Learner *learn.Learner
	// ExploreRate enables ε-greedy strategy exploration on every shard
	// controller: each adaptation epoch applies a uniformly random strategy
	// with this probability, feeding the learner outcomes the greedy policy
	// would never measure. Zero disables exploration.
	ExploreRate float64
	// ExploreSeed seeds exploration; each shard derives its own stream from
	// it, so multi-shard runs stay deterministic under a fake clock.
	ExploreSeed int64

	// AuditEvery enables the node auditor: a loop that sweeps every shard's
	// device health each interval and flips the node to degraded (Ready()
	// false, /readyz 503 "degraded") once any shard's health score falls
	// below DegradedScore. Zero disables the loop; Audit can still be
	// called manually (tests, external schedulers).
	AuditEvery time.Duration
	// DegradedScore is the auditor's readiness threshold in [0,1]; a shard
	// scoring below it degrades the node (default 0.5). A healthy device
	// scores 1.0; dead dies, read-retry storms, and wear spread pull the
	// score down (see HealthScore).
	DegradedScore float64
	// AuditLog, when set, receives one line per degradation flip.
	AuditLog func(format string, args ...any)
}

func (c *Config) fillDefaults() {
	if c.ShardCount == 0 {
		c.ShardCount = 1
	}
	if c.MailboxLen == 0 {
		c.MailboxLen = 1024
	}
	if c.BatchMax == 0 {
		c.BatchMax = 256
	}
	if c.Tenants == 0 {
		c.Tenants = 4
	}
	if c.QueueLen == 0 {
		c.QueueLen = 64
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 32
	}
	if c.MaxBytes == 0 {
		c.MaxBytes = 64 << 20
	}
	if c.Accel == 0 {
		c.Accel = 1
	}
	if c.TickEvery == 0 {
		c.TickEvery = 2 * time.Millisecond
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	if c.DegradedScore == 0 {
		c.DegradedScore = 0.5
	}
}

// Validate reports the first invalid field.
func (c Config) Validate() error {
	if err := c.Device.Validate(); err != nil {
		return err
	}
	switch {
	case c.ShardCount < 0, c.MailboxLen < 0, c.BatchMax < 0:
		return fmt.Errorf("serve: negative shard bounds in %+v", c)
	case c.Tenants < 0, c.QueueLen < 0, c.QueueDepth < 0, c.MaxBytes < 0:
		return fmt.Errorf("serve: negative bounds in %+v", c)
	case c.Accel < 0:
		return fmt.Errorf("serve: negative accel %v", c.Accel)
	case c.ExploreRate < 0 || c.ExploreRate > 1:
		return fmt.Errorf("serve: explore rate %v outside [0,1]", c.ExploreRate)
	case c.AuditEvery < 0:
		return fmt.Errorf("serve: negative audit interval %v", c.AuditEvery)
	case c.DegradedScore < 0 || c.DegradedScore > 1:
		return fmt.Errorf("serve: degraded score %v outside [0,1]", c.DegradedScore)
	}
	return nil
}

// Response reports one completed request.
type Response struct {
	Latency sim.Time // simulated response latency (queue wait included)
	At      sim.Time // simulated completion time
}

// outcome is what a pending request's waiter receives.
type outcome struct {
	resp Response
	err  error
}

// Pending is one admitted request between admission and completion. The
// state word is the CAS state machine shared by the shard goroutine and the
// waiter; everything else is written once at admission (req, stamp, shard)
// or owned by the shard goroutine (arrival, reaped).
type Pending struct {
	req     Request
	shard   *shard
	stamp   sim.Time // wall-derived sim time at admission; the arrival target
	arrival sim.Time // sim time the shard admitted it; latency measures from here
	state   atomic.Int32
	reaped  bool         // queue slot released (shard-goroutine-only)
	done    chan outcome // buffered 1; filled exactly once (nil with notify)
	notify  Completion   // callback delivery; nil for channel waiters
}

// resolve delivers the outcome exactly once (the caller holds the CAS win
// into stateResolved): to the notify callback for SubmitTo requests, to the
// buffered channel for Submit/SubmitAsync waiters.
func (p *Pending) resolve(out outcome) {
	if p.notify != nil {
		p.notify.Complete(out.resp, out.err)
		return
	}
	p.done <- out
}

// Completion receives an admitted request's outcome exactly once. Complete
// is invoked from the owning shard's goroutine, so implementations must not
// block (enqueue and return); err is non-nil when the request was rejected
// after admission (drain).
type Completion interface {
	Complete(resp Response, err error)
}

// Wait blocks until the request completes, the node drains, or ctx ends.
// A context cancellation while the request is still queued frees its queue
// slot synchronously; once in the device the simulated work always
// completes (there is no abort in the device model) but the response is
// abandoned.
func (n *Node) Wait(ctx context.Context, p *Pending) (Response, error) {
	select {
	case out := <-p.done:
		return out.resp, out.err
	case <-ctx.Done():
		sd := p.shard
		ts := &sd.tenants[p.req.Tenant]
		switch {
		case p.state.CompareAndSwap(stateQueued, stateResolved):
			ts.canceled.Add(1)
			// Round-trip a reap through the mailbox so the queue slot is
			// free before we return: a retry after cancellation must be
			// admissible immediately.
			if sd.enter() {
				reply := make(chan shardReply, 1)
				sd.mailbox <- shardMsg{kind: msgReap, p: p, reply: reply}
				sd.leave()
				<-reply
			}
			return Response{}, fmt.Errorf("%w: %w", ErrCanceled, ctx.Err())
		case p.state.CompareAndSwap(stateDispatched, stateResolved):
			ts.canceled.Add(1)
			return Response{}, fmt.Errorf("%w: %w", ErrCanceled, ctx.Err())
		default:
			// Resolution won the race; the outcome is (or is about to be)
			// in the buffered channel.
			out := <-p.done
			return out.resp, out.err
		}
	}
}

// Submit admits a request and waits for its completion.
func (n *Node) Submit(ctx context.Context, req Request) (Response, error) {
	p, err := n.SubmitAsync(req)
	if err != nil {
		return Response{}, err
	}
	return n.Wait(ctx, p)
}

// Server is the HTTP front end over a node core: the node plus the wire
// surface (Handler) and the model-reload hook. Everything transport-free
// lives on the embedded Node; Server adds only what binds it to clients.
type Server struct {
	*Node

	reloadMu sync.Mutex
	reloader Reloader

	sampleLog *learn.Log
}

// SetSampleLog installs the sample journal behind GET /learn/samples, the
// export a sidecar trainer (keeper-train -follow) polls. The daemon wires
// the same log into Config.Sink so every shard's epochs land in it. Call
// before Handler is serving traffic.
func (s *Server) SetSampleLog(l *learn.Log) { s.sampleLog = l }

// New builds a server: a fresh node core wrapped in the HTTP front end.
// See NewNode for the core's semantics.
func New(cfg Config, k *keeper.Keeper) (*Server, error) {
	n, err := NewNode(cfg, k)
	if err != nil {
		return nil, err
	}
	return &Server{Node: n}, nil
}
