// Package serve is the serving layer: a long-running multi-tenant SSD
// service wrapped around a simrun.Session. Tenants submit I/O over HTTP
// (JSON, or a compact line protocol for load generators); requests are
// admitted through bounded per-tenant queues into the simulated device,
// whose clock is paced against wall time by a configurable acceleration
// factor; and the keeper runs online — a sliding-window feature collector
// fed by live arrivals drives periodic ANN inference and epoch-based
// channel reallocation, instead of the batch drivers' fixed trace scan.
//
// Concurrency model: the simulation engine is single-goroutine by design,
// so one mutex serializes everything that touches it — admissions, the
// pacer tick, metrics snapshots, and the drain. Handler goroutines hold the
// lock only long enough to advance the clock and enqueue; they wait for
// completion on a per-request channel filled by the engine's completion
// callback. The lock is therefore held for microseconds at a time and the
// device, not the lock, is the throughput bound.
//
// Pacing model: simulated time is a linear image of wall time,
// sim = (wall - start) * Accel. Every entry point first advances the engine
// to the current wall target (firing any completions that came due), so
// simulated completions surface with at most one pacer tick of wall delay.
// Accel > 1 runs the device faster than real time (useful for smoke tests
// and accelerated replay); Accel < 1 slows it down, which is how overload
// is produced on demand.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"ssdkeeper/internal/keeper"
	"ssdkeeper/internal/nand"
	"ssdkeeper/internal/sim"
	"ssdkeeper/internal/simrun"
	"ssdkeeper/internal/ssd"
	"ssdkeeper/internal/stats"
)

// Admission and lifecycle errors, mapped onto HTTP statuses by the handler
// layer (429, 503, 400).
var (
	// ErrQueueFull is backpressure: the tenant's admission queue is at its
	// bound. Clients should retry after backing off.
	ErrQueueFull = errors.New("serve: tenant queue full")
	// ErrDraining means the server is shutting down and admits nothing.
	ErrDraining = errors.New("serve: draining")
	// ErrCanceled means the client gave up before completion.
	ErrCanceled = errors.New("serve: request canceled")
)

// Config parameterizes a Server.
type Config struct {
	Device  nand.Config
	Options ssd.Options
	Season  simrun.Seasoning

	// Tenants is the tenant-ID space served (default features.MaxTenants
	// via the keeper; 4). Requests outside it are rejected as invalid.
	Tenants int
	// QueueLen bounds each tenant's admission queue (default 64). A full
	// queue rejects with ErrQueueFull instead of queueing unboundedly.
	QueueLen int
	// QueueDepth bounds each tenant's in-device commands (default 32),
	// the serving-layer analogue of hostif's per-queue depth.
	QueueDepth int
	// MaxBytes bounds each tenant's logical address space (default 64MB,
	// the working-set size the keeper's training mixes use).
	MaxBytes int64
	// Accel is the pacing factor: simulated nanoseconds per wall
	// nanosecond (default 1.0).
	Accel float64
	// TickEvery is the pacer period (default 2ms wall). Completions and
	// adaptation epochs fire with at most this much wall delay when no
	// arrivals are advancing the clock.
	TickEvery time.Duration
	// Now is the wall clock (default time.Now); tests inject a manual
	// clock to make pacing deterministic.
	Now func() time.Time
}

func (c *Config) fillDefaults() {
	if c.Tenants == 0 {
		c.Tenants = 4
	}
	if c.QueueLen == 0 {
		c.QueueLen = 64
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 32
	}
	if c.MaxBytes == 0 {
		c.MaxBytes = 64 << 20
	}
	if c.Accel == 0 {
		c.Accel = 1
	}
	if c.TickEvery == 0 {
		c.TickEvery = 2 * time.Millisecond
	}
	if c.Now == nil {
		c.Now = time.Now
	}
}

// Validate reports the first invalid field.
func (c Config) Validate() error {
	if err := c.Device.Validate(); err != nil {
		return err
	}
	switch {
	case c.Tenants < 0, c.QueueLen < 0, c.QueueDepth < 0, c.MaxBytes < 0:
		return fmt.Errorf("serve: negative bounds in %+v", c)
	case c.Accel < 0:
		return fmt.Errorf("serve: negative accel %v", c.Accel)
	}
	return nil
}

// Response reports one completed request.
type Response struct {
	Latency sim.Time // simulated response latency (queue wait included)
	At      sim.Time // simulated completion time
}

// outcome is what a pending request's waiter receives.
type outcome struct {
	resp Response
	err  error
}

// Pending is one admitted request between admission and completion. All
// fields except done are guarded by the server mutex.
type Pending struct {
	req      Request
	arrival  sim.Time     // sim time at admission; latency is measured from here
	done     chan outcome // buffered 1; filled exactly once
	resolved bool         // completion, rejection, or cancellation delivered
}

// tenantQueue is one tenant's serving state.
type tenantQueue struct {
	queued   []*Pending // admitted, waiting for device capacity
	inflight int

	admitted  [2]uint64 // by op: arrivals accepted into queue or device
	completed [2]uint64
	hist      [2]stats.Histogram // sim response latency by op
	rejFull   uint64
	canceled  uint64
}

// Server is the serving core. Build one with New, start its pacer with
// Start, submit with Submit (or the HTTP layer in http.go), and stop it
// with Drain.
type Server struct {
	cfg    Config
	runner *simrun.Runner
	dev    *ssd.Device
	eng    *sim.Engine
	ctrl   *keeper.Controller // nil when serving without a keeper

	mu        sync.Mutex
	started   bool
	stopped   bool      // pacer stop already requested
	epoch     time.Time // wall anchor of sim time zero
	queues    []tenantQueue
	draining  bool
	admitted  uint64 // total accepted (for the final result snapshot)
	rejDrain  uint64
	rejBad    uint64
	submitErr error // first device submit failure; poisons the server

	stop chan struct{} // closes to stop the pacer
	done chan struct{} // pacer exited
}

// New builds a server over a fresh seasoned session. k (may be nil) enables
// the online keeper; its device geometry must match cfg.Device so channel
// strategies bind onto the same channel count.
func New(cfg Config, k *keeper.Keeper) (*Server, error) {
	cfg.fillDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if k != nil && k.Config().Device != cfg.Device {
		return nil, fmt.Errorf("serve: keeper geometry %+v differs from server geometry %+v",
			k.Config().Device, cfg.Device)
	}
	runner := simrun.NewRunner(simrun.WithProbe(simrun.NewCounterProbe(cfg.Device)))
	// Empty traits leave the device unbound — every tenant on all channels
	// with static allocation — the state the online keeper adapts from.
	sess, err := runner.NewSession(simrun.Config{
		Device: cfg.Device, Options: cfg.Options, Season: cfg.Season,
	})
	if err != nil {
		return nil, err
	}
	dev := sess.Device()
	s := &Server{
		cfg:    cfg,
		runner: runner,
		dev:    dev,
		eng:    dev.Engine(),
		epoch:  cfg.Now(), // sim time zero is the construction instant
		queues: make([]tenantQueue, cfg.Tenants),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	if k != nil {
		s.ctrl = k.Controller(dev)
		// A live device can idle for many windows; adapting on empty
		// windows would re-bind channels on zero information.
		s.ctrl.SkipIdle = true
	}
	return s, nil
}

// Start launches the pacer goroutine. (Simulated time zero was anchored
// when the server was built; an un-started server still paces correctly on
// every entry point, it just never advances between requests on its own.)
func (s *Server) Start() {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return
	}
	s.started = true
	s.mu.Unlock()
	go s.pace()
}

// pace ticks the clock forward so completions and adaptation epochs fire
// even when no arrivals are advancing it.
func (s *Server) pace() {
	defer close(s.done)
	t := time.NewTicker(s.cfg.TickEvery)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			s.mu.Lock()
			if !s.draining {
				s.advanceLocked()
			}
			s.mu.Unlock()
		}
	}
}

// wallSim maps a wall instant to its simulated time under the pacing model.
func (s *Server) wallSim(t time.Time) sim.Time {
	d := t.Sub(s.epoch)
	if d < 0 {
		return 0
	}
	return sim.Time(float64(d) * s.cfg.Accel)
}

// advanceLocked advances the engine to the current wall target, firing any
// completions that came due (which dispatch queued work in turn), and ticks
// the keeper so epochs track time even across arrival gaps. It returns the
// target so callers can stamp arrivals with the exact time the engine was
// advanced to (reading the clock twice would race the engine into the past).
func (s *Server) advanceLocked() sim.Time {
	target := s.wallSim(s.cfg.Now())
	s.eng.RunUntil(target)
	if s.ctrl != nil {
		s.ctrl.Tick(target)
	}
	return target
}

// submitLocked hands an admitted request to the device. The completion
// callback runs inside the engine (under the server mutex): it records the
// latency, resolves the waiter, and back-fills device capacity from the
// tenant's queue.
func (s *Server) submitLocked(p *Pending) {
	q := &s.queues[p.req.Tenant]
	q.inflight++
	err := s.dev.SubmitAt(p.req.Record(p.arrival), p.arrival, func(lat sim.Time) {
		q.inflight--
		q.completed[p.req.Op]++
		q.hist[p.req.Op].Add(lat)
		if !p.resolved {
			p.resolved = true
			p.done <- outcome{resp: Response{Latency: lat, At: s.eng.Now()}}
		}
		s.dispatchLocked(q)
	})
	if err != nil {
		// A submit failure is a server bug or a device-full condition;
		// fail this request and remember the first error for /healthz.
		q.inflight--
		if s.submitErr == nil {
			s.submitErr = err
		}
		if !p.resolved {
			p.resolved = true
			p.done <- outcome{err: err}
		}
	}
}

// dispatchLocked moves queued requests into the device while the tenant has
// capacity.
func (s *Server) dispatchLocked(q *tenantQueue) {
	for q.inflight < s.cfg.QueueDepth && len(q.queued) > 0 {
		p := q.queued[0]
		q.queued = q.queued[1:]
		if p.resolved { // canceled while queued
			continue
		}
		// A queued request's arrival stays its admission time, so the
		// recorded latency includes the time spent waiting for capacity.
		s.submitLocked(p)
	}
}

// SubmitAsync validates and admits a request, returning a handle to wait
// on. Admission advances the simulated clock to the current wall target, so
// the request arrives "now" in simulated time. Rejections (validation,
// backpressure, draining) are synchronous errors.
func (s *Server) SubmitAsync(req Request) (*Pending, error) {
	if err := req.Validate(s.cfg.Tenants, s.cfg.MaxBytes); err != nil {
		s.mu.Lock()
		s.rejBad++
		s.mu.Unlock()
		return nil, fmt.Errorf("serve: invalid request: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		s.rejDrain++
		return nil, ErrDraining
	}
	if err := s.submitErr; err != nil {
		return nil, err
	}
	now := s.advanceLocked()
	q := &s.queues[req.Tenant]
	if q.inflight >= s.cfg.QueueDepth && len(q.queued) >= s.cfg.QueueLen {
		q.rejFull++
		return nil, ErrQueueFull
	}
	p := &Pending{req: req, arrival: now, done: make(chan outcome, 1)}
	q.admitted[req.Op]++
	s.admitted++
	if s.ctrl != nil {
		s.ctrl.Observe(now, req.Record(now))
	}
	if q.inflight < s.cfg.QueueDepth {
		s.submitLocked(p)
	} else {
		q.queued = append(q.queued, p)
	}
	return p, nil
}

// Wait blocks until the request completes, the server drains, or ctx ends.
// A context cancellation while the request is still queued frees its queue
// slot; once in the device the simulated work always completes (there is no
// abort in the device model) but the response is abandoned.
func (s *Server) Wait(ctx context.Context, p *Pending) (Response, error) {
	select {
	case out := <-p.done:
		return out.resp, out.err
	case <-ctx.Done():
		s.mu.Lock()
		if !p.resolved {
			p.resolved = true // completion callback now skips delivery
			s.queues[p.req.Tenant].canceled++
			s.removeQueuedLocked(p)
		}
		s.mu.Unlock()
		// Prefer a completion that raced the cancellation.
		select {
		case out := <-p.done:
			return out.resp, out.err
		default:
		}
		return Response{}, fmt.Errorf("%w: %w", ErrCanceled, ctx.Err())
	}
}

// removeQueuedLocked takes a canceled request out of its tenant's admission
// queue so it stops occupying a bounded slot. In-device requests are left
// to finish.
func (s *Server) removeQueuedLocked(p *Pending) {
	q := &s.queues[p.req.Tenant]
	for i, qp := range q.queued {
		if qp == p {
			q.queued = append(q.queued[:i], q.queued[i+1:]...)
			return
		}
	}
}

// Submit admits a request and waits for its completion.
func (s *Server) Submit(ctx context.Context, req Request) (Response, error) {
	p, err := s.SubmitAsync(req)
	if err != nil {
		return Response{}, err
	}
	return s.Wait(ctx, p)
}

// Drain stops admission, rejects everything still queued, completes all
// in-flight device work (simulated time jumps to the last completion), and
// stops the pacer. It returns the final device result; calling it twice
// returns the same snapshot. The ISSUE-level guarantee: after Drain, every
// admitted-and-dispatched request has been answered, every queued one was
// rejected with ErrDraining, and the device counters equal those of a batch
// replay of the dispatched requests at their admission times.
func (s *Server) Drain() ssd.Result {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		for i := range s.queues {
			q := &s.queues[i]
			for _, p := range q.queued {
				if !p.resolved {
					p.resolved = true
					s.rejDrain++
					p.done <- outcome{err: ErrDraining}
				}
			}
			q.queued = nil
		}
		// No more arrivals: run the engine dry so every in-flight request
		// completes and resolves its waiter.
		s.eng.Run()
	}
	res := s.dev.Snapshot(int(s.admitted))
	started, stopped := s.started, s.stopped
	s.stopped = true
	s.mu.Unlock()
	if started {
		if !stopped {
			close(s.stop)
		}
		<-s.done
	}
	return res
}

// Draining reports whether Drain has begun.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Err returns the first device submit failure, if any (surfaced by
// /healthz so orchestrators restart a poisoned server).
func (s *Server) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.submitErr
}

// Device exposes the underlying device for tests that inspect FTL state.
func (s *Server) Device() *ssd.Device { return s.dev }

// Controller exposes the online keeper controller (nil without a keeper).
func (s *Server) Controller() *keeper.Controller { return s.ctrl }

// SimNow returns the current simulated time (advancing it to the wall
// target first).
func (s *Server) SimNow() sim.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.draining {
		s.advanceLocked()
	}
	return s.eng.Now()
}
