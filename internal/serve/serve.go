// Package serve is the serving layer: a long-running multi-tenant SSD
// service sharded over independent simulated devices. Tenants submit I/O
// over HTTP (JSON, or a compact line protocol for load generators);
// requests route to a shard by stable hash, are admitted through bounded
// per-tenant queues into that shard's device, whose clock is paced against
// wall time by a configurable acceleration factor; and the keeper runs
// online per shard — a sliding-window feature collector fed by live
// arrivals drives periodic ANN inference and epoch-based channel
// reallocation on each shard's device independently.
//
// Concurrency model: a simulation engine is single-goroutine by design, so
// each shard runs one goroutine that owns its engine, device, controller,
// and queues outright (see shard.go). Handlers validate, reserve a bounded
// admission slot with one atomic, and push the request into the shard's
// mailbox; they wait for completion on a per-request channel filled by the
// engine's completion callback. One shard wakeup drains a batch of
// submissions, so the cost of waking the actor amortizes across bursts, and
// no lock is ever held across the engine.
//
// Pacing model: simulated time is a linear image of wall time,
// sim = (wall - start) * Accel, shared by all shards. Each shard goroutine
// sleeps until the earlier of its next engine event's wall due time and one
// pacer tick, so completions surface on time without polling. Requests are
// stamped with the wall-derived sim time at admission and arrive at that
// stamp regardless of mailbox lag. Accel > 1 runs the devices faster than
// real time; Accel < 1 slows them down, which is how overload (and a
// device-bound, shard-scalable regime) is produced on demand.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ssdkeeper/internal/ftl"
	"ssdkeeper/internal/keeper"
	"ssdkeeper/internal/nand"
	"ssdkeeper/internal/policy"
	"ssdkeeper/internal/sim"
	"ssdkeeper/internal/simrun"
	"ssdkeeper/internal/ssd"
	"ssdkeeper/internal/stats"
)

// Admission and lifecycle errors, mapped onto HTTP statuses by the handler
// layer (429, 503, 400).
var (
	// ErrQueueFull is backpressure: the tenant's admission queue is at its
	// bound. Clients should retry after backing off.
	ErrQueueFull = errors.New("serve: tenant queue full")
	// ErrDraining means the server is shutting down and admits nothing.
	ErrDraining = errors.New("serve: draining")
	// ErrCanceled means the client gave up before completion.
	ErrCanceled = errors.New("serve: request canceled")
)

// Config parameterizes a Server.
type Config struct {
	Device  nand.Config
	Options ssd.Options
	Season  simrun.Seasoning

	// ShardCount is the number of independent device shards (default 1).
	// Each shard owns a full device/engine/keeper stack driven by its own
	// goroutine; tenants route to shards by stable hash, optionally spread
	// across all shards by a per-request key.
	ShardCount int
	// MailboxLen bounds each shard's submission mailbox (default 1024).
	MailboxLen int
	// BatchMax bounds how many mailbox messages one shard wakeup processes
	// before re-arming its pacing timer (default 256).
	BatchMax int

	// Tenants is the tenant-ID space served (default features.MaxTenants
	// via the keeper; 4). Requests outside it are rejected as invalid.
	Tenants int
	// QueueLen bounds each tenant's admission queue per shard (default
	// 64). A full queue rejects with ErrQueueFull instead of queueing
	// unboundedly.
	QueueLen int
	// QueueDepth bounds each tenant's in-device commands per shard
	// (default 32), the serving-layer analogue of hostif's per-queue depth.
	QueueDepth int
	// MaxBytes bounds each tenant's logical address space (default 64MB,
	// the working-set size the keeper's training mixes use).
	MaxBytes int64
	// Accel is the pacing factor: simulated nanoseconds per wall
	// nanosecond (default 1.0).
	Accel float64
	// TickEvery caps the pacer sleep (default 2ms wall). Completions wake
	// shards exactly when due via the engine's next-event time; the tick
	// bounds how stale keeper epochs and the wall target can get when no
	// events are pending.
	TickEvery time.Duration
	// Now is the wall clock (default time.Now); tests inject a manual
	// clock to make pacing deterministic.
	Now func() time.Time
}

func (c *Config) fillDefaults() {
	if c.ShardCount == 0 {
		c.ShardCount = 1
	}
	if c.MailboxLen == 0 {
		c.MailboxLen = 1024
	}
	if c.BatchMax == 0 {
		c.BatchMax = 256
	}
	if c.Tenants == 0 {
		c.Tenants = 4
	}
	if c.QueueLen == 0 {
		c.QueueLen = 64
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 32
	}
	if c.MaxBytes == 0 {
		c.MaxBytes = 64 << 20
	}
	if c.Accel == 0 {
		c.Accel = 1
	}
	if c.TickEvery == 0 {
		c.TickEvery = 2 * time.Millisecond
	}
	if c.Now == nil {
		c.Now = time.Now
	}
}

// Validate reports the first invalid field.
func (c Config) Validate() error {
	if err := c.Device.Validate(); err != nil {
		return err
	}
	switch {
	case c.ShardCount < 0, c.MailboxLen < 0, c.BatchMax < 0:
		return fmt.Errorf("serve: negative shard bounds in %+v", c)
	case c.Tenants < 0, c.QueueLen < 0, c.QueueDepth < 0, c.MaxBytes < 0:
		return fmt.Errorf("serve: negative bounds in %+v", c)
	case c.Accel < 0:
		return fmt.Errorf("serve: negative accel %v", c.Accel)
	}
	return nil
}

// Response reports one completed request.
type Response struct {
	Latency sim.Time // simulated response latency (queue wait included)
	At      sim.Time // simulated completion time
}

// outcome is what a pending request's waiter receives.
type outcome struct {
	resp Response
	err  error
}

// Pending is one admitted request between admission and completion. The
// state word is the CAS state machine shared by the shard goroutine and the
// waiter; everything else is written once at admission (req, stamp, shard)
// or owned by the shard goroutine (arrival, reaped).
type Pending struct {
	req     Request
	shard   *shard
	stamp   sim.Time // wall-derived sim time at admission; the arrival target
	arrival sim.Time // sim time the shard admitted it; latency measures from here
	state   atomic.Int32
	reaped  bool         // queue slot released (shard-goroutine-only)
	done    chan outcome // buffered 1; filled exactly once
}

// Server is the serving core: a stable-hash router over ShardCount
// independent shards. Build one with New, start pacing with Start, submit
// with Submit (or the HTTP layer in http.go), and stop it with Drain.
type Server struct {
	cfg    Config
	epoch  time.Time // wall anchor of sim time zero, shared by all shards
	shards []*shard

	started atomic.Bool
	startc  chan struct{} // closed by Start; shards arm their pacers on it

	draining atomic.Bool
	rejBad   atomic.Uint64
	rejDrain atomic.Uint64

	// ksrc is the keeper's policy source (nil without a keeper): /metrics
	// reads the published active/shadow versions from it, and the reload
	// surface swaps providers through it.
	ksrc     *policy.Source
	reloadMu sync.Mutex
	reloader Reloader

	errMu     sync.Mutex
	submitErr error // first device submit failure; poisons the server

	drainMu  sync.Mutex
	drained  bool
	perShard []ssd.Result
	merged   ssd.Result
}

// New builds a server over ShardCount fresh seasoned shards. k (may be nil)
// enables the online keeper — one controller per shard over the shared
// model; its device geometry must match cfg.Device so channel strategies
// bind onto the same channel count.
func New(cfg Config, k *keeper.Keeper) (*Server, error) {
	cfg.fillDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if k != nil && k.Config().Device != cfg.Device {
		return nil, fmt.Errorf("serve: keeper geometry %+v differs from server geometry %+v",
			k.Config().Device, cfg.Device)
	}
	s := &Server{
		cfg:    cfg,
		epoch:  cfg.Now(), // sim time zero is the construction instant
		startc: make(chan struct{}),
	}
	if k != nil {
		s.ksrc = k.Source()
	}
	for i := 0; i < cfg.ShardCount; i++ {
		sd, err := newShard(i, s, k)
		if err != nil {
			for _, prev := range s.shards {
				prev.sendMu.Lock()
				prev.closed = true
				prev.sendMu.Unlock()
				close(prev.stop)
				<-prev.done
			}
			return nil, err
		}
		s.shards = append(s.shards, sd)
	}
	return s, nil
}

// Start arms the shard pacers. (Simulated time zero was anchored when the
// server was built; an un-started server still paces correctly on every
// entry point, it just never advances between requests on its own.)
func (s *Server) Start() {
	if s.started.CompareAndSwap(false, true) {
		close(s.startc)
	}
}

// wallSim maps a wall instant to its simulated time under the pacing model.
func (s *Server) wallSim(t time.Time) sim.Time {
	d := t.Sub(s.epoch)
	if d < 0 {
		return 0
	}
	return sim.Time(float64(d) * s.cfg.Accel)
}

// wallTarget is the simulated time the clock should be advanced to now.
func (s *Server) wallTarget() sim.Time { return s.wallSim(s.cfg.Now()) }

// wallUntil returns how far in the future (wall) the simulated instant at
// is due; non-positive means already due.
func (s *Server) wallUntil(at sim.Time) time.Duration {
	due := s.epoch.Add(time.Duration(float64(at) / s.cfg.Accel))
	return due.Sub(s.cfg.Now())
}

// poison records the first device submit failure for /healthz.
func (s *Server) poison(err error) {
	s.errMu.Lock()
	if s.submitErr == nil {
		s.submitErr = err
	}
	s.errMu.Unlock()
}

// ShardCount returns the number of shards serving.
func (s *Server) ShardCount() int { return len(s.shards) }

// ShardFor returns the shard index the request routes to: stable hash of
// the tenant, mixed with the request key when one is set.
func (s *Server) ShardFor(req Request) int {
	return shardIndex(req.Tenant, req.Key, len(s.shards))
}

// SubmitAsync validates and admits a request, returning a handle to wait
// on. Admission stamps the request with the current wall-derived simulated
// time — it arrives "now" regardless of mailbox lag. Rejections
// (validation, backpressure, draining) are synchronous errors: the bounded
// slot is reserved with one atomic before the mailbox, so ErrQueueFull
// never needs a shard round trip.
func (s *Server) SubmitAsync(req Request) (*Pending, error) {
	if err := req.Validate(s.cfg.Tenants, s.cfg.MaxBytes); err != nil {
		s.rejBad.Add(1)
		return nil, fmt.Errorf("serve: invalid request: %w", err)
	}
	if s.draining.Load() {
		s.rejDrain.Add(1)
		return nil, ErrDraining
	}
	s.errMu.Lock()
	err := s.submitErr
	s.errMu.Unlock()
	if err != nil {
		return nil, err
	}
	sd := s.shards[shardIndex(req.Tenant, req.Key, len(s.shards))]
	ts := &sd.tenants[req.Tenant]
	bound := int64(s.cfg.QueueDepth + s.cfg.QueueLen)
	for {
		n := ts.occupancy.Load()
		if n >= bound {
			ts.rejFull.Add(1)
			return nil, ErrQueueFull
		}
		if ts.occupancy.CompareAndSwap(n, n+1) {
			break
		}
	}
	p := &Pending{
		req:   req,
		shard: sd,
		stamp: s.wallTarget(),
		done:  make(chan outcome, 1),
	}
	ts.admitted[req.Op].Add(1)
	if !sd.enter() {
		// The shard closed between the draining check and here.
		ts.occupancy.Add(-1)
		ts.admitted[req.Op].Add(^uint64(0))
		s.rejDrain.Add(1)
		return nil, ErrDraining
	}
	sd.mailbox <- shardMsg{kind: msgSubmit, p: p}
	sd.leave()
	return p, nil
}

// Wait blocks until the request completes, the server drains, or ctx ends.
// A context cancellation while the request is still queued frees its queue
// slot synchronously; once in the device the simulated work always
// completes (there is no abort in the device model) but the response is
// abandoned.
func (s *Server) Wait(ctx context.Context, p *Pending) (Response, error) {
	select {
	case out := <-p.done:
		return out.resp, out.err
	case <-ctx.Done():
		sd := p.shard
		ts := &sd.tenants[p.req.Tenant]
		switch {
		case p.state.CompareAndSwap(stateQueued, stateResolved):
			ts.canceled.Add(1)
			// Round-trip a reap through the mailbox so the queue slot is
			// free before we return: a retry after cancellation must be
			// admissible immediately.
			if sd.enter() {
				reply := make(chan shardReply, 1)
				sd.mailbox <- shardMsg{kind: msgReap, p: p, reply: reply}
				sd.leave()
				<-reply
			}
			return Response{}, fmt.Errorf("%w: %w", ErrCanceled, ctx.Err())
		case p.state.CompareAndSwap(stateDispatched, stateResolved):
			ts.canceled.Add(1)
			return Response{}, fmt.Errorf("%w: %w", ErrCanceled, ctx.Err())
		default:
			// Resolution won the race; the outcome is (or is about to be)
			// in the buffered channel.
			out := <-p.done
			return out.resp, out.err
		}
	}
}

// Submit admits a request and waits for its completion.
func (s *Server) Submit(ctx context.Context, req Request) (Response, error) {
	p, err := s.SubmitAsync(req)
	if err != nil {
		return Response{}, err
	}
	return s.Wait(ctx, p)
}

// Drain stops admission, rejects everything still queued, completes all
// in-flight device work on every shard (each shard's simulated time jumps
// to its last completion), and stops the shard goroutines. It returns the
// merged final device result; calling it twice returns the same snapshot.
// The guarantee holds per shard: after Drain, every dispatched request has
// been answered, every queued one was rejected with ErrDraining, and each
// shard's device counters equal those of a batch replay of its dispatched
// records (see DrainResults).
func (s *Server) Drain() ssd.Result {
	s.drainMu.Lock()
	defer s.drainMu.Unlock()
	if !s.drained {
		s.draining.Store(true)
		s.perShard = make([]ssd.Result, len(s.shards))
		// The drain message queues FIFO behind in-flight submissions, so
		// every admitted request is either dispatched or drain-rejected —
		// never lost.
		for i, sd := range s.shards {
			if r, ok := sd.send(msgDrain); ok {
				s.perShard[i] = r.res
			}
		}
		for _, sd := range s.shards {
			sd.sendMu.Lock()
			sd.closed = true
			sd.sendMu.Unlock()
			close(sd.stop)
			<-sd.done
		}
		s.merged = mergeResults(s.perShard)
		s.drained = true
	}
	return s.merged
}

// DrainResults drains (if not already drained) and returns the per-shard
// final results, indexed by shard. Shard i's result equals a batch replay
// of the records ShardFor routed to it that reached its device.
func (s *Server) DrainResults() []ssd.Result {
	s.Drain()
	s.drainMu.Lock()
	defer s.drainMu.Unlock()
	return append([]ssd.Result(nil), s.perShard...)
}

// mergeResults folds per-shard results into one serving-level summary:
// counters and latency accumulators sum, makespan is the max (shards run
// concurrently in wall time), bus/die stats concatenate in shard order, and
// fairness is recomputed as Jain's index over the merged per-tenant totals.
func mergeResults(rs []ssd.Result) ssd.Result {
	if len(rs) == 0 {
		return ssd.Result{}
	}
	if len(rs) == 1 {
		return rs[0]
	}
	var m ssd.Result
	m.PerTenant = make(map[int]stats.Latency)
	for _, r := range rs {
		if r.Makespan > m.Makespan {
			m.Makespan = r.Makespan
		}
		m.Requests += r.Requests
		m.Device.Merge(r.Device)
		for t, l := range r.PerTenant {
			cur := m.PerTenant[t]
			cur.Merge(l)
			m.PerTenant[t] = cur
		}
		m.BusStats = append(m.BusStats, r.BusStats...)
		m.DieStats = append(m.DieStats, r.DieStats...)
		m.FTL = addFTL(m.FTL, r.FTL)
		m.Conflicts += r.Conflicts
		m.ConflictWait += r.ConflictWait
	}
	m.Fairness = jainFairness(m.PerTenant)
	return m
}

func addFTL(a, b ftl.Counters) ftl.Counters {
	a.Writes += b.Writes
	a.Preloads += b.Preloads
	a.Invalidations += b.Invalidations
	a.GCRuns += b.GCRuns
	a.GCMovedPages += b.GCMovedPages
	a.GCErases += b.GCErases
	a.WLRuns += b.WLRuns
	a.WLMovedPages += b.WLMovedPages
	a.Mapped += b.Mapped
	return a
}

// jainFairness is Jain's index over the tenants' total latencies, the same
// definition the device collector uses for a single shard.
func jainFairness(per map[int]stats.Latency) float64 {
	var sum, sumsq float64
	n := 0
	for _, l := range per {
		x := float64(l.Read.Sum + l.Write.Sum)
		sum += x
		sumsq += x * x
		n++
	}
	if n == 0 || sumsq == 0 {
		return 1
	}
	return sum * sum / (float64(n) * sumsq)
}

// Draining reports whether Drain has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// Err returns the first device submit failure, if any (surfaced by
// /healthz so orchestrators restart a poisoned server).
func (s *Server) Err() error {
	s.errMu.Lock()
	defer s.errMu.Unlock()
	return s.submitErr
}

// Device exposes shard 0's device for tests that inspect FTL state.
func (s *Server) Device() *ssd.Device { return s.shards[0].dev }

// Controller exposes shard 0's online keeper controller (nil without a
// keeper). Tests drive a single-shard server through it; multi-shard
// observability goes through the metrics snapshot.
func (s *Server) Controller() *keeper.Controller { return s.shards[0].ctrl }

// KeeperSwitches sums the online re-allocations across shards. Safe at any
// time; after Drain it reads the frozen final snapshots.
func (s *Server) KeeperSwitches() int {
	total := 0
	for _, sd := range s.shards {
		if r, ok := sd.send(msgSnapshot); ok {
			total += r.snap.switches
		} else if sd.final != nil {
			total += sd.final.switches
		}
	}
	return total
}

// SimNow returns the current simulated time — the max across shards —
// advancing each shard to the wall target first. The mailbox round trip
// doubles as a barrier: every submission enqueued before this call has been
// processed when it returns.
func (s *Server) SimNow() sim.Time {
	var now sim.Time
	for _, sd := range s.shards {
		r, ok := sd.send(msgAdvance)
		if !ok {
			r = shardReply{now: sd.final.simNow}
		}
		if r.now > now {
			now = r.now
		}
	}
	return now
}
