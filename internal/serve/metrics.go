package serve

import (
	"fmt"
	"io"

	"ssdkeeper/internal/trace"
)

// WriteMetrics renders the server's state in Prometheus text exposition
// format: serving counters and latency summaries per tenant, keeper
// adaptation state, and every simulation probe counter from the
// stats.Counters registry (as labeled samples, so dotted counter names pass
// through unmangled).
func (s *Server) WriteMetrics(w io.Writer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.draining {
		s.advanceLocked()
	}

	fmt.Fprintf(w, "# HELP ssdkeeper_up Whether the server is accepting requests.\n")
	fmt.Fprintf(w, "# TYPE ssdkeeper_up gauge\n")
	up := 1
	if s.draining || s.submitErr != nil {
		up = 0
	}
	fmt.Fprintf(w, "ssdkeeper_up %d\n", up)

	fmt.Fprintf(w, "# HELP ssdkeeper_sim_seconds Simulated time elapsed.\n")
	fmt.Fprintf(w, "# TYPE ssdkeeper_sim_seconds gauge\n")
	fmt.Fprintf(w, "ssdkeeper_sim_seconds %g\n", float64(s.eng.Now())/1e9)
	fmt.Fprintf(w, "# HELP ssdkeeper_accel Simulated nanoseconds per wall nanosecond.\n")
	fmt.Fprintf(w, "# TYPE ssdkeeper_accel gauge\n")
	fmt.Fprintf(w, "ssdkeeper_accel %g\n", s.cfg.Accel)

	ops := [2]string{trace.Read: "read", trace.Write: "write"}

	fmt.Fprintf(w, "# HELP ssdkeeper_admitted_total Requests admitted, by tenant and op.\n")
	fmt.Fprintf(w, "# TYPE ssdkeeper_admitted_total counter\n")
	for t := range s.queues {
		for op, name := range ops {
			fmt.Fprintf(w, "ssdkeeper_admitted_total{tenant=\"%d\",op=\"%s\"} %d\n",
				t, name, s.queues[t].admitted[op])
		}
	}
	fmt.Fprintf(w, "# HELP ssdkeeper_completed_total Requests completed, by tenant and op.\n")
	fmt.Fprintf(w, "# TYPE ssdkeeper_completed_total counter\n")
	for t := range s.queues {
		for op, name := range ops {
			fmt.Fprintf(w, "ssdkeeper_completed_total{tenant=\"%d\",op=\"%s\"} %d\n",
				t, name, s.queues[t].completed[op])
		}
	}

	fmt.Fprintf(w, "# HELP ssdkeeper_rejected_total Requests rejected, by reason.\n")
	fmt.Fprintf(w, "# TYPE ssdkeeper_rejected_total counter\n")
	var full, canceled uint64
	for t := range s.queues {
		full += s.queues[t].rejFull
		canceled += s.queues[t].canceled
	}
	fmt.Fprintf(w, "ssdkeeper_rejected_total{reason=\"queue_full\"} %d\n", full)
	fmt.Fprintf(w, "ssdkeeper_rejected_total{reason=\"draining\"} %d\n", s.rejDrain)
	fmt.Fprintf(w, "ssdkeeper_rejected_total{reason=\"invalid\"} %d\n", s.rejBad)
	fmt.Fprintf(w, "ssdkeeper_rejected_total{reason=\"canceled\"} %d\n", canceled)

	fmt.Fprintf(w, "# HELP ssdkeeper_queue_length Requests waiting for device capacity.\n")
	fmt.Fprintf(w, "# TYPE ssdkeeper_queue_length gauge\n")
	for t := range s.queues {
		fmt.Fprintf(w, "ssdkeeper_queue_length{tenant=\"%d\"} %d\n", t, len(s.queues[t].queued))
	}
	fmt.Fprintf(w, "# HELP ssdkeeper_inflight Requests inside the device.\n")
	fmt.Fprintf(w, "# TYPE ssdkeeper_inflight gauge\n")
	for t := range s.queues {
		fmt.Fprintf(w, "ssdkeeper_inflight{tenant=\"%d\"} %d\n", t, s.queues[t].inflight)
	}

	fmt.Fprintf(w, "# HELP ssdkeeper_latency_seconds Simulated response latency summary (queue wait included).\n")
	fmt.Fprintf(w, "# TYPE ssdkeeper_latency_seconds summary\n")
	for t := range s.queues {
		for op, name := range ops {
			h := &s.queues[t].hist[op]
			if h.Count() == 0 {
				continue
			}
			for _, q := range []struct {
				label string
				v     float64
			}{
				{"0.5", float64(h.P50()) / 1e9},
				{"0.95", float64(h.P95()) / 1e9},
				{"0.99", float64(h.P99()) / 1e9},
			} {
				fmt.Fprintf(w, "ssdkeeper_latency_seconds{tenant=\"%d\",op=\"%s\",quantile=\"%s\"} %g\n",
					t, name, q.label, q.v)
			}
			fmt.Fprintf(w, "ssdkeeper_latency_seconds_count{tenant=\"%d\",op=\"%s\"} %d\n",
				t, name, h.Count())
		}
	}

	if s.ctrl != nil {
		fmt.Fprintf(w, "# HELP ssdkeeper_keeper_switches_total Online channel re-allocations performed.\n")
		fmt.Fprintf(w, "# TYPE ssdkeeper_keeper_switches_total counter\n")
		fmt.Fprintf(w, "ssdkeeper_keeper_switches_total %d\n", s.ctrl.SwitchCount())
		if sw, ok := s.ctrl.LastSwitch(); ok {
			fmt.Fprintf(w, "# HELP ssdkeeper_keeper_strategy Strategy index chosen by the last adaptation epoch.\n")
			fmt.Fprintf(w, "# TYPE ssdkeeper_keeper_strategy gauge\n")
			fmt.Fprintf(w, "ssdkeeper_keeper_strategy{name=%q} %d\n",
				sw.Strategy.Name(s.cfg.Device.Channels), sw.Index)
			fmt.Fprintf(w, "# HELP ssdkeeper_keeper_last_switch_sim_seconds Simulated time of the last re-allocation.\n")
			fmt.Fprintf(w, "# TYPE ssdkeeper_keeper_last_switch_sim_seconds gauge\n")
			fmt.Fprintf(w, "ssdkeeper_keeper_last_switch_sim_seconds %g\n", float64(sw.At)/1e9)
		}
	}

	if cs := s.runner.Counters(); cs != nil {
		fmt.Fprintf(w, "# HELP ssdkeeper_sim_counter Simulation probe counters (see internal/simrun).\n")
		fmt.Fprintf(w, "# TYPE ssdkeeper_sim_counter counter\n")
		for _, name := range cs.Names() {
			fmt.Fprintf(w, "ssdkeeper_sim_counter{name=%q} %d\n", name, cs.Get(name))
		}
	}
}
