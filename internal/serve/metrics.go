package serve

import (
	"fmt"
	"io"

	"ssdkeeper/internal/keeper"
	"ssdkeeper/internal/sim"
	"ssdkeeper/internal/stats"
	"ssdkeeper/internal/trace"
)

// WriteMetrics renders the server's state in Prometheus text exposition
// format: serving counters and latency summaries per tenant (merged across
// shards), per-shard gauges, keeper adaptation state, and every simulation
// probe counter from the stats.Counters registries (as labeled samples, so
// dotted counter names pass through unmangled).
//
// Rendering holds no locks: each shard copies its state into a snapshot
// inside its own goroutine (one mailbox round trip), handler-side counters
// are atomics, and the writer — possibly a slow scraper — is fed entirely
// from the copies. A stalled /metrics client can no longer stall admission.
func (n *Node) WriteMetrics(w io.Writer) {
	snaps := make([]*shardSnapshot, len(n.shards))
	for i, sd := range n.shards {
		if r, ok := sd.send(msgSnapshot); ok {
			snaps[i] = r.snap
		} else {
			snaps[i] = sd.final // closed post-drain: frozen final state
		}
	}

	fmt.Fprintf(w, "# HELP ssdkeeper_up Whether the server is accepting requests.\n")
	fmt.Fprintf(w, "# TYPE ssdkeeper_up gauge\n")
	up := 1
	if n.draining.Load() || n.Err() != nil {
		up = 0
	}
	fmt.Fprintf(w, "ssdkeeper_up %d\n", up)

	fmt.Fprintf(w, "# HELP ssdkeeper_shards Independent device shards serving.\n")
	fmt.Fprintf(w, "# TYPE ssdkeeper_shards gauge\n")
	fmt.Fprintf(w, "ssdkeeper_shards %d\n", len(n.shards))

	var simNow sim.Time
	for _, snap := range snaps {
		if snap.simNow > simNow {
			simNow = snap.simNow
		}
	}
	fmt.Fprintf(w, "# HELP ssdkeeper_sim_seconds Simulated time elapsed (max across shards).\n")
	fmt.Fprintf(w, "# TYPE ssdkeeper_sim_seconds gauge\n")
	fmt.Fprintf(w, "ssdkeeper_sim_seconds %g\n", float64(simNow)/1e9)
	fmt.Fprintf(w, "# HELP ssdkeeper_accel Simulated nanoseconds per wall nanosecond.\n")
	fmt.Fprintf(w, "# TYPE ssdkeeper_accel gauge\n")
	fmt.Fprintf(w, "ssdkeeper_accel %g\n", n.cfg.Accel)

	if len(n.shards) > 1 {
		fmt.Fprintf(w, "# HELP ssdkeeper_shard_sim_seconds Simulated time elapsed per shard.\n")
		fmt.Fprintf(w, "# TYPE ssdkeeper_shard_sim_seconds gauge\n")
		for i, snap := range snaps {
			fmt.Fprintf(w, "ssdkeeper_shard_sim_seconds{shard=\"%d\"} %g\n", i, float64(snap.simNow)/1e9)
		}
	}

	ops := [2]string{trace.Read: "read", trace.Write: "write"}

	fmt.Fprintf(w, "# HELP ssdkeeper_admitted_total Requests admitted, by tenant and op.\n")
	fmt.Fprintf(w, "# TYPE ssdkeeper_admitted_total counter\n")
	for t := 0; t < n.cfg.Tenants; t++ {
		for op, name := range ops {
			var total uint64
			for _, sd := range n.shards {
				total += sd.tenants[t].admitted[op].Load()
			}
			fmt.Fprintf(w, "ssdkeeper_admitted_total{tenant=\"%d\",op=\"%s\"} %d\n", t, name, total)
		}
	}
	fmt.Fprintf(w, "# HELP ssdkeeper_completed_total Requests completed, by tenant and op.\n")
	fmt.Fprintf(w, "# TYPE ssdkeeper_completed_total counter\n")
	for t := 0; t < n.cfg.Tenants; t++ {
		for op, name := range ops {
			var total uint64
			for _, snap := range snaps {
				total += snap.tenants[t].completed[op]
			}
			fmt.Fprintf(w, "ssdkeeper_completed_total{tenant=\"%d\",op=\"%s\"} %d\n", t, name, total)
		}
	}

	fmt.Fprintf(w, "# HELP ssdkeeper_rejected_total Requests rejected, by reason.\n")
	fmt.Fprintf(w, "# TYPE ssdkeeper_rejected_total counter\n")
	var full, canceled uint64
	for _, sd := range n.shards {
		for t := range sd.tenants {
			full += sd.tenants[t].rejFull.Load()
			canceled += sd.tenants[t].canceled.Load()
		}
	}
	fmt.Fprintf(w, "ssdkeeper_rejected_total{reason=\"queue_full\"} %d\n", full)
	fmt.Fprintf(w, "ssdkeeper_rejected_total{reason=\"draining\"} %d\n", n.rejDrain.Load())
	fmt.Fprintf(w, "ssdkeeper_rejected_total{reason=\"invalid\"} %d\n", n.rejBad.Load())
	fmt.Fprintf(w, "ssdkeeper_rejected_total{reason=\"canceled\"} %d\n", canceled)
	fmt.Fprintf(w, "ssdkeeper_rejected_total{reason=\"migrating\"} %d\n", n.rejMigr.Load())

	fmt.Fprintf(w, "# HELP ssdkeeper_tenants_parked Tenants whose admission gate is shut for drain/handoff.\n")
	fmt.Fprintf(w, "# TYPE ssdkeeper_tenants_parked gauge\n")
	fmt.Fprintf(w, "ssdkeeper_tenants_parked %d\n", n.parked.Load())

	fmt.Fprintf(w, "# HELP ssdkeeper_replayed_total Handoff records re-dispatched into this node, by tenant.\n")
	fmt.Fprintf(w, "# TYPE ssdkeeper_replayed_total counter\n")
	for t := 0; t < n.cfg.Tenants; t++ {
		var total uint64
		for _, snap := range snaps {
			total += snap.tenants[t].replayed
		}
		fmt.Fprintf(w, "ssdkeeper_replayed_total{tenant=\"%d\"} %d\n", t, total)
	}

	fmt.Fprintf(w, "# HELP ssdkeeper_queue_length Requests waiting for device capacity.\n")
	fmt.Fprintf(w, "# TYPE ssdkeeper_queue_length gauge\n")
	for t := 0; t < n.cfg.Tenants; t++ {
		total := 0
		for _, snap := range snaps {
			total += snap.tenants[t].queued
		}
		fmt.Fprintf(w, "ssdkeeper_queue_length{tenant=\"%d\"} %d\n", t, total)
	}
	fmt.Fprintf(w, "# HELP ssdkeeper_inflight Requests inside the devices.\n")
	fmt.Fprintf(w, "# TYPE ssdkeeper_inflight gauge\n")
	for t := 0; t < n.cfg.Tenants; t++ {
		total := 0
		for _, snap := range snaps {
			total += snap.tenants[t].inflight
		}
		fmt.Fprintf(w, "ssdkeeper_inflight{tenant=\"%d\"} %d\n", t, total)
	}

	fmt.Fprintf(w, "# HELP ssdkeeper_latency_seconds Simulated response latency summary (queue wait included).\n")
	fmt.Fprintf(w, "# TYPE ssdkeeper_latency_seconds summary\n")
	for t := 0; t < n.cfg.Tenants; t++ {
		for op, name := range ops {
			var h stats.Histogram
			for _, snap := range snaps {
				h.Merge(&snap.tenants[t].hist[op])
			}
			if h.Count() == 0 {
				continue
			}
			for _, q := range []struct {
				label string
				v     float64
			}{
				{"0.5", float64(h.P50()) / 1e9},
				{"0.95", float64(h.P95()) / 1e9},
				{"0.99", float64(h.P99()) / 1e9},
			} {
				fmt.Fprintf(w, "ssdkeeper_latency_seconds{tenant=\"%d\",op=\"%s\",quantile=\"%s\"} %g\n",
					t, name, q.label, q.v)
			}
			fmt.Fprintf(w, "ssdkeeper_latency_seconds_count{tenant=\"%d\",op=\"%s\"} %d\n",
				t, name, h.Count())
		}
	}

	if n.shards[0].ctrl != nil {
		switches := 0
		var last keeper.Switch
		hasLast := false
		var agree, diverge, shErrs uint64
		for _, snap := range snaps {
			switches += snap.switches
			if snap.hasLast && (!hasLast || snap.last.At > last.At) {
				last, hasLast = snap.last, true
			}
			agree += snap.shadowAgree
			diverge += snap.shadowDiv
			shErrs += snap.shadowErrs
		}

		// Published versions come straight from the policy source, so a
		// reload is visible here immediately; the per-shard applied version
		// follows at each shard's next adaptation epoch.
		fmt.Fprintf(w, "# HELP ssdkeeper_model_info Published policy versions (value is always 1).\n")
		fmt.Fprintf(w, "# TYPE ssdkeeper_model_info gauge\n")
		fmt.Fprintf(w, "ssdkeeper_model_info{role=\"active\",version=%q} 1\n", n.ksrc.Active().Version())
		if sh := n.ksrc.Shadow(); sh != nil {
			fmt.Fprintf(w, "ssdkeeper_model_info{role=\"shadow\",version=%q} 1\n", sh.Version())
		}
		fmt.Fprintf(w, "# HELP ssdkeeper_shard_model_version Policy version applied at each shard's last adaptation epoch.\n")
		fmt.Fprintf(w, "# TYPE ssdkeeper_shard_model_version gauge\n")
		for i, snap := range snaps {
			fmt.Fprintf(w, "ssdkeeper_shard_model_version{shard=\"%d\",version=%q} 1\n", i, snap.polVersion)
		}

		// Shadow counters render whenever a keeper is present (zero without
		// a candidate installed) so dashboards and smoke tests can rely on
		// the series existing.
		fmt.Fprintf(w, "# HELP ssdkeeper_shadow_agree_total Adaptation epochs where the shadow policy agreed with the active one.\n")
		fmt.Fprintf(w, "# TYPE ssdkeeper_shadow_agree_total counter\n")
		fmt.Fprintf(w, "ssdkeeper_shadow_agree_total %d\n", agree)
		fmt.Fprintf(w, "# HELP ssdkeeper_shadow_diverge_total Adaptation epochs where the shadow policy diverged from the active one.\n")
		fmt.Fprintf(w, "# TYPE ssdkeeper_shadow_diverge_total counter\n")
		fmt.Fprintf(w, "ssdkeeper_shadow_diverge_total %d\n", diverge)
		fmt.Fprintf(w, "# HELP ssdkeeper_shadow_errors_total Adaptation epochs where the shadow policy failed to decide.\n")
		fmt.Fprintf(w, "# TYPE ssdkeeper_shadow_errors_total counter\n")
		fmt.Fprintf(w, "ssdkeeper_shadow_errors_total %d\n", shErrs)
		fmt.Fprintf(w, "# HELP ssdkeeper_keeper_switches_total Online channel re-allocations performed (all shards).\n")
		fmt.Fprintf(w, "# TYPE ssdkeeper_keeper_switches_total counter\n")
		fmt.Fprintf(w, "ssdkeeper_keeper_switches_total %d\n", switches)
		if len(n.shards) > 1 {
			fmt.Fprintf(w, "# HELP ssdkeeper_shard_keeper_switches_total Online channel re-allocations per shard.\n")
			fmt.Fprintf(w, "# TYPE ssdkeeper_shard_keeper_switches_total counter\n")
			for i, snap := range snaps {
				fmt.Fprintf(w, "ssdkeeper_shard_keeper_switches_total{shard=\"%d\"} %d\n", i, snap.switches)
			}
		}
		if hasLast {
			fmt.Fprintf(w, "# HELP ssdkeeper_keeper_strategy Strategy index chosen by the last adaptation epoch.\n")
			fmt.Fprintf(w, "# TYPE ssdkeeper_keeper_strategy gauge\n")
			fmt.Fprintf(w, "ssdkeeper_keeper_strategy{name=%q} %d\n",
				last.Strategy.Name(n.cfg.Device.Channels), last.Index)
			fmt.Fprintf(w, "# HELP ssdkeeper_keeper_last_switch_sim_seconds Simulated time of the last re-allocation.\n")
			fmt.Fprintf(w, "# TYPE ssdkeeper_keeper_last_switch_sim_seconds gauge\n")
			fmt.Fprintf(w, "ssdkeeper_keeper_last_switch_sim_seconds %g\n", float64(last.At)/1e9)
		}
	}

	if lrn := n.cfg.Learner; lrn != nil {
		// One atomic load of the learner's published snapshot; the learner
		// goroutine refreshes it at each Step, so rendering stays lock-free.
		st := lrn.Status()
		fmt.Fprintf(w, "# HELP ssdkeeper_learn_samples_total Adaptation-epoch outcome samples harvested.\n")
		fmt.Fprintf(w, "# TYPE ssdkeeper_learn_samples_total counter\n")
		fmt.Fprintf(w, "ssdkeeper_learn_samples_total %d\n", st.Samples)
		fmt.Fprintf(w, "# HELP ssdkeeper_learn_buffer Replay-buffer occupancy.\n")
		fmt.Fprintf(w, "# TYPE ssdkeeper_learn_buffer gauge\n")
		fmt.Fprintf(w, "ssdkeeper_learn_buffer %d\n", st.Buffered)
		fmt.Fprintf(w, "# HELP ssdkeeper_learn_retrains_total Candidate models retrained from live samples.\n")
		fmt.Fprintf(w, "# TYPE ssdkeeper_learn_retrains_total counter\n")
		fmt.Fprintf(w, "ssdkeeper_learn_retrains_total %d\n", st.Retrains)
		fmt.Fprintf(w, "# HELP ssdkeeper_learn_promotions_total Candidates auto-promoted to active.\n")
		fmt.Fprintf(w, "# TYPE ssdkeeper_learn_promotions_total counter\n")
		fmt.Fprintf(w, "ssdkeeper_learn_promotions_total %d\n", st.Promotions)
		fmt.Fprintf(w, "# HELP ssdkeeper_learn_demotions_total Promotions rolled back to the last-good version on regression.\n")
		fmt.Fprintf(w, "# TYPE ssdkeeper_learn_demotions_total counter\n")
		fmt.Fprintf(w, "ssdkeeper_learn_demotions_total %d\n", st.Demotions)
		fmt.Fprintf(w, "# HELP ssdkeeper_learn_discards_total Candidates discarded at the promotion gate.\n")
		fmt.Fprintf(w, "# TYPE ssdkeeper_learn_discards_total counter\n")
		fmt.Fprintf(w, "ssdkeeper_learn_discards_total %d\n", st.Discards)
		fmt.Fprintf(w, "# HELP ssdkeeper_learn_state Promotion state machine position (value is always 1).\n")
		fmt.Fprintf(w, "# TYPE ssdkeeper_learn_state gauge\n")
		fmt.Fprintf(w, "ssdkeeper_learn_state{state=%q} 1\n", st.State)
		if st.Candidate != "" {
			fmt.Fprintf(w, "# HELP ssdkeeper_learn_candidate_info Candidate under shadow evaluation or post-promotion watch (value is always 1).\n")
			fmt.Fprintf(w, "# TYPE ssdkeeper_learn_candidate_info gauge\n")
			fmt.Fprintf(w, "ssdkeeper_learn_candidate_info{version=%q} 1\n", st.Candidate)
		}
		fmt.Fprintf(w, "# HELP ssdkeeper_learn_regret Rolling relative latency regret of the serving policy vs the best-measured strategy.\n")
		fmt.Fprintf(w, "# TYPE ssdkeeper_learn_regret gauge\n")
		fmt.Fprintf(w, "ssdkeeper_learn_regret %g\n", st.Regret)
	}

	// Device health: raw counters summed across shards, per-shard scores, and
	// the auditor's verdict. All of it comes from the snapshots, so a sick
	// device is visible here even when the audit loop is disabled.
	var dieFail, retries, retired, slow int64
	worst := 1.0
	for _, snap := range snaps {
		hs := snap.health
		dieFail += hs.DieFailures
		retries += hs.ReadRetries
		retired += hs.BlocksRetired
		slow += hs.SlowPrograms
		if s := shardHealthScore(snap); s < worst {
			worst = s
		}
	}
	fmt.Fprintf(w, "# HELP ssdkeeper_die_failures_total NAND dies failed across all shards.\n")
	fmt.Fprintf(w, "# TYPE ssdkeeper_die_failures_total counter\n")
	fmt.Fprintf(w, "ssdkeeper_die_failures_total %d\n", dieFail)
	fmt.Fprintf(w, "# HELP ssdkeeper_read_retries_total Reads that needed extra sense passes across all shards.\n")
	fmt.Fprintf(w, "# TYPE ssdkeeper_read_retries_total counter\n")
	fmt.Fprintf(w, "ssdkeeper_read_retries_total %d\n", retries)
	fmt.Fprintf(w, "# HELP ssdkeeper_blocks_retired_total Flash blocks retired across all shards.\n")
	fmt.Fprintf(w, "# TYPE ssdkeeper_blocks_retired_total counter\n")
	fmt.Fprintf(w, "ssdkeeper_blocks_retired_total %d\n", retired)
	fmt.Fprintf(w, "# HELP ssdkeeper_slow_programs_total Wear-slowed program operations across all shards.\n")
	fmt.Fprintf(w, "# TYPE ssdkeeper_slow_programs_total counter\n")
	fmt.Fprintf(w, "ssdkeeper_slow_programs_total %d\n", slow)
	fmt.Fprintf(w, "# HELP ssdkeeper_shard_health_score Device health score per shard (1 healthy, 0 dead).\n")
	fmt.Fprintf(w, "# TYPE ssdkeeper_shard_health_score gauge\n")
	for i, snap := range snaps {
		fmt.Fprintf(w, "ssdkeeper_shard_health_score{shard=\"%d\"} %g\n", i, shardHealthScore(snap))
	}
	fmt.Fprintf(w, "# HELP ssdkeeper_health_score Worst shard health score (the auditor's input).\n")
	fmt.Fprintf(w, "# TYPE ssdkeeper_health_score gauge\n")
	fmt.Fprintf(w, "ssdkeeper_health_score %g\n", worst)
	fmt.Fprintf(w, "# HELP ssdkeeper_degraded Whether the auditor has quarantined this node.\n")
	fmt.Fprintf(w, "# TYPE ssdkeeper_degraded gauge\n")
	degraded := 0
	if n.degraded.Load() {
		degraded = 1
	}
	fmt.Fprintf(w, "ssdkeeper_degraded %d\n", degraded)

	if len(snaps[0].counterNames) > 0 {
		fmt.Fprintf(w, "# HELP ssdkeeper_sim_counter Simulation probe counters, summed across shards (see internal/simrun).\n")
		fmt.Fprintf(w, "# TYPE ssdkeeper_sim_counter counter\n")
		// Shards build identical registries (same probe construction), so
		// shard 0's insertion order names them all; sum by name.
		totals := make(map[string]int64, len(snaps[0].counterNames))
		for _, snap := range snaps {
			for i, n := range snap.counterNames {
				totals[n] += snap.counterVals[i]
			}
		}
		for _, name := range snaps[0].counterNames {
			fmt.Fprintf(w, "ssdkeeper_sim_counter{name=%q} %d\n", name, totals[name])
		}
	}
}
