package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"time"

	"ssdkeeper/internal/learn"
)

// Wire endpoints:
//
//	POST /io        one JSON request  {"tenant":0,"op":"read","offset":0,"size":4096}
//	                → 200 {"latency_ns":..., "sim_ns":...}
//	POST /io/batch  text/plain, one line-protocol request per line
//	                ("<tenant> <R|W> <offset> <size>"); the whole batch is
//	                admitted open-loop, then answered line by line in order:
//	                "ok <latency_ns>" | "rej <reason>"
//	POST /model/reload  hot-swap the active (or shadow) policy from the
//	                checkpoint registry; see reload.go for the protocol
//	POST /tenant/drain?tenant=N    quiesce one tenant; → 200 TenantDrain JSON
//	POST /tenant/handoff?tenant=N  replay a TenantDrain's records here
//	POST /tenant/release?tenant=N  reopen a parked tenant's gate
//	GET  /metrics   Prometheus text exposition
//	GET  /healthz   liveness: "ok" | 503 "draining"/device error
//	GET  /readyz    readiness: "ok" | 503 while draining, poisoned, or a
//	                tenant handoff is in flight (fleet membership polls this)
//	     /debug/pprof/*  standard profiles
//
// Backpressure: a full tenant queue answers 429 with a Retry-After hint; a
// draining server answers 503, and so does a migrating tenant (the fleet
// router retries once the migration completes). Each request runs under the
// server's request timeout (Handler's reqTimeout), so a stalled pacer
// cannot strand clients.

// maxBodyBytes bounds request bodies; a batch of maxBatchLines maximal
// lines fits comfortably.
const (
	maxBodyBytes  = 4 << 20
	maxBatchLines = 65536
	// maxHandoffBytes bounds a tenant-handoff body; a record log is ~100
	// bytes per dispatched request as JSON, so this covers long-lived
	// tenants without letting a bad client exhaust memory.
	maxHandoffBytes = 256 << 20
)

// retryAfterSeconds is the backoff hint sent with 429/503. One second spans
// several pacer ticks and many device service times at any sane Accel.
const retryAfterSeconds = "1"

// Handler returns the daemon's HTTP surface. reqTimeout bounds each
// request's wait for simulated completion (0 means 30s).
func (s *Server) Handler(reqTimeout time.Duration) http.Handler {
	if reqTimeout <= 0 {
		reqTimeout = 30 * time.Second
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/io", func(w http.ResponseWriter, r *http.Request) { s.handleIO(w, r, reqTimeout) })
	mux.HandleFunc("/io/batch", func(w http.ResponseWriter, r *http.Request) { s.handleBatch(w, r, reqTimeout) })
	mux.HandleFunc("/model/reload", s.handleReload)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		s.WriteMetrics(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		switch {
		case s.Err() != nil:
			http.Error(w, fmt.Sprintf("device error: %v", s.Err()), http.StatusServiceUnavailable)
		case s.Draining():
			http.Error(w, "draining", http.StatusServiceUnavailable)
		default:
			fmt.Fprintln(w, "ok")
		}
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		switch {
		case s.Err() != nil:
			http.Error(w, fmt.Sprintf("device error: %v", s.Err()), http.StatusServiceUnavailable)
		case s.Draining():
			http.Error(w, "draining", http.StatusServiceUnavailable)
		case s.Degraded():
			http.Error(w, "degraded: device health below threshold", http.StatusServiceUnavailable)
		case !s.Ready():
			http.Error(w, "tenant handoff in flight", http.StatusServiceUnavailable)
		default:
			fmt.Fprintln(w, "ok")
		}
	})
	mux.HandleFunc("/learn/samples", s.handleLearnSamples)
	mux.HandleFunc("/tenant/drain", s.handleTenantDrain)
	mux.HandleFunc("/tenant/handoff", s.handleTenantHandoff)
	mux.HandleFunc("/tenant/release", s.handleTenantRelease)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// rejectStatus maps an admission error to its HTTP status.
func rejectStatus(err error) int {
	switch {
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrDraining), errors.Is(err, ErrTenantMigrating):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrCanceled):
		return http.StatusGatewayTimeout
	default:
		return http.StatusBadRequest
	}
}

func writeReject(w http.ResponseWriter, err error) {
	status := rejectStatus(err)
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", retryAfterSeconds)
	}
	http.Error(w, err.Error(), status)
}

// bodyBufPool recycles /io request-body buffers, and ioRespPool the rendered
// response bytes: with the hand-rolled decoder and renderer, the /io JSON
// hot path performs no per-request allocations of its own (what remains is
// net/http's).
var (
	bodyBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}
	ioRespPool  = sync.Pool{New: func() any {
		b := make([]byte, 0, 64)
		return &b
	}}
)

// AppendIOResponse renders the /io completion without reflection. The byte
// form (including the trailing newline) is identical to what
// json.Encoder.Encode produced for jsonResponse, so clients see no change.
// Exported because the fleet router renders the same body on its wire proxy
// fast path.
func AppendIOResponse(dst []byte, latencyNS, simNS int64) []byte {
	dst = append(dst, `{"latency_ns":`...)
	dst = strconv.AppendInt(dst, latencyNS, 10)
	dst = append(dst, `,"sim_ns":`...)
	dst = strconv.AppendInt(dst, simNS, 10)
	return append(dst, '}', '\n')
}

func (s *Server) handleIO(w http.ResponseWriter, r *http.Request, reqTimeout time.Duration) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	body := bodyBufPool.Get().(*bytes.Buffer)
	body.Reset()
	defer bodyBufPool.Put(body)
	if _, err := body.ReadFrom(http.MaxBytesReader(w, r.Body, maxBodyBytes)); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	req, err := DecodeJSONRequest(body.Bytes())
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), reqTimeout)
	defer cancel()
	resp, err := s.Submit(ctx, req)
	if err != nil {
		writeReject(w, err)
		return
	}
	bp := ioRespPool.Get().(*[]byte)
	out := AppendIOResponse((*bp)[:0], int64(resp.Latency), int64(resp.At))
	w.Header().Set("Content-Type", "application/json")
	w.Write(out)
	*bp = out[:0]
	ioRespPool.Put(bp)
}

// batchResult is one line's outcome: a handle to wait on, or an immediate
// rejection.
type batchResult struct {
	p   *Pending
	err error
}

// batchPool recycles the per-batch result slices, and scanBufPool the
// scanner's line buffer: under a sustained load generator /io/batch is the
// hot path and these are its two big per-request allocations.
var (
	batchPool = sync.Pool{New: func() any {
		s := make([]batchResult, 0, 256)
		return &s
	}}
	scanBufPool = sync.Pool{New: func() any {
		b := make([]byte, 64<<10)
		return &b
	}}
	batchWriterPool = sync.Pool{New: func() any {
		return bufio.NewWriterSize(nil, 32<<10)
	}}
)

// jsonEnc pairs a growth buffer with a json.Encoder bound to it, so the
// status endpoints (/model/reload, /tenant/*) render through a pooled
// encoder instead of allocating one per response.
type jsonEnc struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var jsonEncPool = sync.Pool{New: func() any {
	e := &jsonEnc{}
	e.enc = json.NewEncoder(&e.buf)
	return e
}}

// writeJSON renders v through a pooled encoder and writes it as one JSON
// response body.
func writeJSON(w http.ResponseWriter, v any) {
	e := jsonEncPool.Get().(*jsonEnc)
	e.buf.Reset()
	if err := e.enc.Encode(v); err != nil {
		jsonEncPool.Put(e)
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(e.buf.Bytes())
	jsonEncPool.Put(e)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request, reqTimeout time.Duration) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	// Admit every line first (open loop), then wait: the batch observes
	// queueing as simulated latency, not as serialized HTTP round trips.
	resultsp := batchPool.Get().(*[]batchResult)
	results := (*resultsp)[:0]
	defer func() {
		// Zero before pooling so recycled slots don't pin Pendings (and
		// their reply channels) past the batch's lifetime.
		clear(results)
		*resultsp = results[:0]
		batchPool.Put(resultsp)
	}()
	bufp := scanBufPool.Get().(*[]byte)
	defer scanBufPool.Put(bufp)
	sc := bufio.NewScanner(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	// The pooled buffer is the common-case size; the max is the body bound,
	// so any line that fits in a legal body parses — a longer line answers a
	// clear 400 instead of silently truncating the batch.
	sc.Buffer(*bufp, maxBodyBytes)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if len(results) >= maxBatchLines {
			http.Error(w, fmt.Sprintf("batch exceeds %d lines", maxBatchLines), http.StatusBadRequest)
			return
		}
		req, err := DecodeLineBytes(line)
		if err != nil {
			results = append(results, batchResult{err: err})
			continue
		}
		p, err := s.SubmitAsync(req)
		results = append(results, batchResult{p: p, err: err})
	}
	if err := sc.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			err = fmt.Errorf("batch line exceeds %d bytes", maxBodyBytes)
		}
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), reqTimeout)
	defer cancel()
	w.Header().Set("Content-Type", "text/plain")
	bw := batchWriterPool.Get().(*bufio.Writer)
	bw.Reset(w)
	defer func() {
		bw.Flush()
		bw.Reset(nil) // drop the ResponseWriter so the pool doesn't pin it
		batchWriterPool.Put(bw)
	}()
	var num [20]byte
	for _, res := range results {
		if res.err != nil {
			bw.WriteString("rej ")
			bw.WriteString(RejectReason(res.err))
			bw.WriteByte('\n')
			continue
		}
		resp, err := s.Wait(ctx, res.p)
		if err != nil {
			bw.WriteString("rej ")
			bw.WriteString(RejectReason(err))
			bw.WriteByte('\n')
			continue
		}
		bw.WriteString("ok ")
		bw.Write(strconv.AppendInt(num[:0], int64(resp.Latency), 10))
		bw.WriteByte('\n')
	}
}

// maxSamplePage bounds one /learn/samples response so a follower that
// lagged far behind pages rather than receiving one huge body.
const maxSamplePage = 2048

// samplePage is the /learn/samples response: the samples from ?since=N on,
// the sequence of the first one (greater than N when the journal evicted
// past the follower), and the sequence to poll from next.
type samplePage struct {
	First   uint64         `json:"first"`
	Next    uint64         `json:"next"`
	Samples []learn.Sample `json:"samples"`
}

// handleLearnSamples serves the sample-export feed a sidecar trainer polls:
// GET /learn/samples?since=N returns the journal from sequence N on.
func (s *Server) handleLearnSamples(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	if s.sampleLog == nil {
		http.Error(w, "sample export not enabled (start with a keeper)", http.StatusNotImplemented)
		return
	}
	var since uint64
	if q := r.URL.Query().Get("since"); q != "" {
		v, err := strconv.ParseUint(q, 10, 64)
		if err != nil {
			http.Error(w, "since: unsigned integer required", http.StatusBadRequest)
			return
		}
		since = v
	}
	samples, first, next := s.sampleLog.Since(since, maxSamplePage)
	if samples == nil {
		samples = []learn.Sample{} // render [] rather than null
	}
	writeJSON(w, samplePage{First: first, Next: next, Samples: samples})
}

// tenantParam parses the required ?tenant=N query parameter.
func tenantParam(w http.ResponseWriter, r *http.Request) (int, bool) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return 0, false
	}
	t, err := strconv.Atoi(r.URL.Query().Get("tenant"))
	if err != nil {
		http.Error(w, "tenant: integer required", http.StatusBadRequest)
		return 0, false
	}
	return t, true
}

// tenantErrStatus maps a tenant-lifecycle error onto an HTTP status: the
// admission statuses where they apply, 409 for gate-state conflicts (already
// migrating, not parked, log disabled) so the fleet router can tell a
// retryable condition from a protocol misuse.
func tenantErrStatus(err error) int {
	switch {
	case errors.Is(err, ErrTenantMigrating), errors.Is(err, ErrNoTenantLog):
		return http.StatusConflict
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable
	default:
		return http.StatusConflict
	}
}

func (s *Server) handleTenantDrain(w http.ResponseWriter, r *http.Request) {
	tenant, ok := tenantParam(w, r)
	if !ok {
		return
	}
	td, err := s.DrainTenant(tenant)
	if err != nil {
		http.Error(w, err.Error(), tenantErrStatus(err))
		return
	}
	writeJSON(w, td)
}

// handoffReply reports how many records a handoff replayed.
type handoffReply struct {
	Tenant   int `json:"tenant"`
	Replayed int `json:"replayed"`
}

func (s *Server) handleTenantHandoff(w http.ResponseWriter, r *http.Request) {
	tenant, ok := tenantParam(w, r)
	if !ok {
		return
	}
	// The body is a TenantDrain (as /tenant/drain produced it) or any JSON
	// object with a "records" array.
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxHandoffBytes))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var td TenantDrain
	if err := json.Unmarshal(body, &td); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	done, err := s.ReplayTenant(tenant, td.Records)
	if err != nil {
		http.Error(w, err.Error(), tenantErrStatus(err))
		return
	}
	writeJSON(w, handoffReply{Tenant: tenant, Replayed: done})
}

func (s *Server) handleTenantRelease(w http.ResponseWriter, r *http.Request) {
	tenant, ok := tenantParam(w, r)
	if !ok {
		return
	}
	if err := s.ReleaseTenant(tenant); err != nil {
		http.Error(w, err.Error(), tenantErrStatus(err))
		return
	}
	fmt.Fprintln(w, "ok")
}

// RejectReason renders the compact reason token of the line protocol.
// Exported so the wire listener and the fleet router speak the same tokens.
func RejectReason(err error) string {
	switch {
	case errors.Is(err, ErrQueueFull):
		return "queue_full"
	case errors.Is(err, ErrTenantMigrating):
		return "migrating"
	case errors.Is(err, ErrDraining):
		return "draining"
	case errors.Is(err, ErrCanceled):
		return "timeout"
	default:
		return "invalid"
	}
}
