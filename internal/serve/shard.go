package serve

import (
	"sync"
	"sync/atomic"
	"time"

	"ssdkeeper/internal/keeper"
	"ssdkeeper/internal/sim"
	"ssdkeeper/internal/simrun"
	"ssdkeeper/internal/ssd"
	"ssdkeeper/internal/stats"
)

// Per-shard actor model: each shard owns a complete serving stack — a
// seasoned device, its engine, its keeper controller, its admission queues —
// and a single goroutine is the only code that touches any of it. Handlers
// never lock a shard; they push a message into the shard's bounded mailbox
// and wait on the request's reply channel. One wakeup drains up to BatchMax
// messages, so a burst of submissions costs one scheduler round trip, not
// one per request.
//
// The only state shared between handler goroutines and the shard goroutine
// is atomic: the per-tenant occupancy counter (admission bounds are enforced
// synchronously, before the mailbox), the admission/rejection counters, and
// each Pending's state word.

// Pending lifecycle, a CAS state machine shared by the shard goroutine
// (dispatch, completion, drain) and the waiter (cancellation). Whoever wins
// the transition into stateResolved delivers the outcome — exactly once.
const (
	stateQueued     int32 = iota // admitted; not yet in the device
	stateDispatched              // submitted to the device
	stateResolved                // outcome delivered (or abandoned by cancel)
)

type msgKind uint8

const (
	msgSubmit   msgKind = iota // p: an admitted request
	msgAdvance                 // advance to the wall target; reply sim now
	msgSnapshot                // advance and reply a metrics snapshot
	msgReap                    // p: canceled while queued; free its slot
	msgDrain                   // reject queued, run dry, reply final result
)

// shardMsg is one mailbox entry. Submissions carry only p; control messages
// carry a kind and a buffered reply channel.
type shardMsg struct {
	kind  msgKind
	p     *Pending
	reply chan shardReply
}

type shardReply struct {
	now  sim.Time
	snap *shardSnapshot
	res  ssd.Result
}

// tenantState is one tenant's serving state on one shard. The first group
// is handler-side bookkeeping (atomics, updated before the mailbox); the
// second is owned by the shard goroutine.
type tenantState struct {
	// occupancy counts admitted-but-unfinished requests; admission CASes
	// it below QueueDepth+QueueLen so ErrQueueFull stays a synchronous
	// answer, with no shard round trip.
	occupancy atomic.Int64
	admitted  [2]atomic.Uint64 // by op
	rejFull   atomic.Uint64
	canceled  atomic.Uint64

	queued    []*Pending // admitted, waiting for device capacity
	inflight  int
	completed [2]uint64
	hist      [2]stats.Histogram // sim response latency by op
}

// shard is one independent serving slice: device, engine, controller,
// queues, goroutine.
type shard struct {
	id  int
	srv *Server

	runner *simrun.Runner
	dev    *ssd.Device
	eng    *sim.Engine
	ctrl   *keeper.Controller // nil when serving without a keeper

	tenants []tenantState

	mailbox chan shardMsg
	stop    chan struct{} // closed by Drain after the final result is out
	done    chan struct{} // closed when the goroutine exits

	// sendMu guards the shard's lifetime: senders hold the read lock
	// across the closed check and the mailbox send, so the shard cannot be
	// closed (goroutine exited, nobody draining the mailbox) mid-send.
	sendMu sync.RWMutex
	closed bool

	// Shard-goroutine-only state.
	draining   bool
	dispatched int            // requests handed to the device (Result.Requests)
	final      *shardSnapshot // metrics state frozen at drain
	finalRes   ssd.Result
}

func newShard(id int, srv *Server, k *keeper.Keeper) (*shard, error) {
	runner := simrun.NewInstrumentedRunner(srv.cfg.Device)
	// Empty traits leave the device unbound — every tenant on all channels
	// with static allocation — the state the online keeper adapts from.
	sess, err := runner.NewSession(simrun.Config{
		Device: srv.cfg.Device, Options: srv.cfg.Options, Season: srv.cfg.Season,
	})
	if err != nil {
		return nil, err
	}
	dev := sess.Device()
	sd := &shard{
		id:      id,
		srv:     srv,
		runner:  runner,
		dev:     dev,
		eng:     dev.Engine(),
		tenants: make([]tenantState, srv.cfg.Tenants),
		mailbox: make(chan shardMsg, srv.cfg.MailboxLen),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	if k != nil {
		sd.ctrl = k.Controller(dev)
		// A live device can idle for many windows; adapting on empty
		// windows would re-bind channels on zero information.
		sd.ctrl.SkipIdle = true
	}
	go sd.loop()
	return sd, nil
}

// enter pins the shard open for one mailbox send; the caller must call
// leave after the send. Returns false once the shard is closed.
func (sd *shard) enter() bool {
	sd.sendMu.RLock()
	if sd.closed {
		sd.sendMu.RUnlock()
		return false
	}
	return true
}

func (sd *shard) leave() { sd.sendMu.RUnlock() }

// send delivers a control message and waits for the reply. ok is false when
// the shard is already closed (post-drain).
func (sd *shard) send(kind msgKind) (shardReply, bool) {
	if !sd.enter() {
		return shardReply{}, false
	}
	reply := make(chan shardReply, 1)
	sd.mailbox <- shardMsg{kind: kind, reply: reply}
	sd.leave()
	return <-reply, true
}

// minWake floors the pacing timer so float rounding near a due event cannot
// busy-spin the loop.
const minWake = 100 * time.Microsecond

// loop is the shard goroutine: the only code that touches the engine,
// device, controller, queues, and histograms.
func (sd *shard) loop() {
	defer close(sd.done)
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()
	// Pacing arms only once Start is called: an un-started server advances
	// purely on messages, which keeps fake-clock tests deterministic.
	paced := false
	startc := sd.srv.startc
	for {
		select {
		case msg := <-sd.mailbox:
			sd.handle(msg)
			sd.drainMailbox()
		case <-startc:
			startc = nil
			paced = true
		case <-timer.C:
			if !sd.draining {
				sd.advanceTo(sd.srv.wallTarget())
			}
		case <-sd.stop:
			sd.sweepMailbox()
			return
		}
		if paced && !sd.draining {
			timer.Reset(sd.nextWake())
		}
	}
}

// drainMailbox batches: having woken for one message, consume whatever else
// is already queued (up to BatchMax) before going back to sleep.
func (sd *shard) drainMailbox() {
	for i := 1; i < sd.srv.cfg.BatchMax; i++ {
		select {
		case msg := <-sd.mailbox:
			sd.handle(msg)
		default:
			return
		}
	}
}

// sweepMailbox answers stragglers after stop: messages already in the
// mailbox when the shard closed (drain has run, so submissions reject and
// control messages reply from the frozen final state).
func (sd *shard) sweepMailbox() {
	for {
		select {
		case msg := <-sd.mailbox:
			sd.handle(msg)
		default:
			return
		}
	}
}

// nextWake sleeps until the earlier of the next engine event's wall due
// time and one pacer tick (keeper epoch boundaries are not engine events,
// so the tick cap keeps adaptation tracking time across idle gaps).
func (sd *shard) nextWake() time.Duration {
	d := sd.srv.cfg.TickEvery
	if at, ok := sd.eng.NextAt(); ok {
		if w := sd.srv.wallUntil(at); w < d {
			d = w
		}
	}
	if d < minWake {
		d = minWake
	}
	return d
}

func (sd *shard) handle(msg shardMsg) {
	switch msg.kind {
	case msgSubmit:
		sd.admit(msg.p)
	case msgAdvance:
		if !sd.draining {
			sd.advanceTo(sd.srv.wallTarget())
		}
		msg.reply <- shardReply{now: sd.eng.Now()}
	case msgSnapshot:
		if !sd.draining {
			sd.advanceTo(sd.srv.wallTarget())
		}
		msg.reply <- shardReply{now: sd.eng.Now(), snap: sd.snapshot()}
	case msgReap:
		sd.reap(msg.p)
		msg.reply <- shardReply{}
	case msgDrain:
		msg.reply <- shardReply{res: sd.drainNow()}
	}
}

// advanceTo runs the engine forward (firing completions, which dispatch
// queued work in turn) and ticks the keeper so epochs track time across
// arrival gaps.
func (sd *shard) advanceTo(target sim.Time) {
	sd.eng.RunUntil(target)
	if sd.ctrl != nil {
		sd.ctrl.Tick(target)
	}
}

// admit processes one submission. The request arrives at its admission-time
// stamp (not the processing instant), so arrival times are independent of
// mailbox lag — the property the drain-equals-batch-replay invariant and
// the fake-clock tests rest on.
func (sd *shard) admit(p *Pending) {
	ts := &sd.tenants[p.req.Tenant]
	if sd.draining {
		// Raced past the handler's draining check; undo the optimistic
		// admission accounting and reject.
		ts.admitted[p.req.Op].Add(^uint64(0))
		sd.srv.rejDrain.Add(1)
		if p.state.CompareAndSwap(stateQueued, stateResolved) {
			p.done <- outcome{err: ErrDraining}
		}
		sd.freeSlot(p, ts)
		return
	}
	if p.state.Load() == stateResolved { // canceled before processing
		sd.freeSlot(p, ts)
		return
	}
	target := p.stamp
	if now := sd.eng.Now(); target < now {
		target = now
	}
	sd.advanceTo(target)
	p.arrival = sd.eng.Now()
	if sd.ctrl != nil {
		sd.ctrl.Observe(p.arrival, p.req.Record(p.arrival))
	}
	if ts.inflight < sd.srv.cfg.QueueDepth {
		sd.dispatch(p, ts)
	} else {
		ts.queued = append(ts.queued, p)
	}
}

// dispatch hands a request to the device. The completion callback runs
// inside the engine — shard-goroutine context — so it touches shard state
// freely; only the resolution CAS and the occupancy release are shared.
func (sd *shard) dispatch(p *Pending, ts *tenantState) {
	if !p.state.CompareAndSwap(stateQueued, stateDispatched) {
		sd.freeSlot(p, ts) // canceled between queueing and dispatch
		return
	}
	ts.inflight++
	err := sd.dev.SubmitAt(p.req.Record(p.arrival), p.arrival, func(lat sim.Time) {
		ts.inflight--
		ts.occupancy.Add(-1)
		ts.completed[p.req.Op]++
		ts.hist[p.req.Op].Add(lat)
		if p.state.CompareAndSwap(stateDispatched, stateResolved) {
			p.done <- outcome{resp: Response{Latency: lat, At: sd.eng.Now()}}
		}
		sd.dispatchQueued(ts)
	})
	if err != nil {
		// A submit failure is a server bug or a device-full condition;
		// fail this request and remember the first error for /healthz.
		ts.inflight--
		ts.occupancy.Add(-1)
		sd.srv.poison(err)
		if p.state.CompareAndSwap(stateDispatched, stateResolved) {
			p.done <- outcome{err: err}
		}
		return
	}
	sd.dispatched++
}

// dispatchQueued moves queued requests into the device while the tenant has
// capacity. A queued request's arrival stays its admission time, so the
// recorded latency includes the time spent waiting for capacity.
func (sd *shard) dispatchQueued(ts *tenantState) {
	for ts.inflight < sd.srv.cfg.QueueDepth && len(ts.queued) > 0 {
		p := ts.queued[0]
		ts.queued = ts.queued[1:]
		sd.dispatch(p, ts)
	}
}

// freeSlot releases a request's occupancy slot exactly once across the
// reap / dispatch-skip / drain paths. reaped is shard-goroutine-only.
func (sd *shard) freeSlot(p *Pending, ts *tenantState) {
	if !p.reaped {
		p.reaped = true
		ts.occupancy.Add(-1)
	}
}

// reap removes a canceled request from its tenant's queue (the waiter
// already won the resolution CAS) and frees its slot.
func (sd *shard) reap(p *Pending) {
	ts := &sd.tenants[p.req.Tenant]
	for i, q := range ts.queued {
		if q == p {
			ts.queued = append(ts.queued[:i], ts.queued[i+1:]...)
			break
		}
	}
	sd.freeSlot(p, ts)
}

// drainNow rejects everything queued, runs the engine dry so every
// dispatched request completes, and freezes the final result and metrics
// snapshot. Idempotent within the shard goroutine.
func (sd *shard) drainNow() ssd.Result {
	if sd.draining {
		return sd.finalRes
	}
	sd.draining = true
	for ti := range sd.tenants {
		ts := &sd.tenants[ti]
		for _, p := range ts.queued {
			if p.state.CompareAndSwap(stateQueued, stateResolved) {
				sd.srv.rejDrain.Add(1)
				p.done <- outcome{err: ErrDraining}
			}
			sd.freeSlot(p, ts)
		}
		ts.queued = nil
	}
	// No more arrivals: run the engine dry so every in-flight request
	// completes and resolves its waiter.
	sd.eng.Run()
	sd.finalRes = sd.dev.Snapshot(sd.dispatched)
	sd.final = sd.snapshot()
	return sd.finalRes
}

// tenantSnapshot is one tenant's metrics state at snapshot time.
type tenantSnapshot struct {
	queued    int
	inflight  int
	completed [2]uint64
	hist      [2]stats.Histogram
}

// shardSnapshot is everything the metrics renderer needs from one shard,
// copied inside the shard goroutine so rendering holds no locks.
type shardSnapshot struct {
	simNow       sim.Time
	tenants      []tenantSnapshot
	switches     int
	last         keeper.Switch
	hasLast      bool
	polVersion   string // policy version applied at the last adaptation epoch
	shadowAgree  uint64
	shadowDiv    uint64
	shadowErrs   uint64
	counterNames []string
	counterVals  []int64
}

func (sd *shard) snapshot() *shardSnapshot {
	snap := &shardSnapshot{
		simNow:  sd.eng.Now(),
		tenants: make([]tenantSnapshot, len(sd.tenants)),
	}
	for i := range sd.tenants {
		ts := &sd.tenants[i]
		snap.tenants[i] = tenantSnapshot{
			queued:    len(ts.queued),
			inflight:  ts.inflight,
			completed: ts.completed,
			hist:      ts.hist, // value copy: Histogram is a plain array struct
		}
	}
	if sd.ctrl != nil {
		snap.switches = sd.ctrl.SwitchCount()
		snap.last, snap.hasLast = sd.ctrl.LastSwitch()
		snap.polVersion = sd.ctrl.PolicyVersion()
		snap.shadowAgree, snap.shadowDiv, snap.shadowErrs = sd.ctrl.ShadowStats()
	}
	if cs := sd.runner.Counters(); cs != nil {
		snap.counterNames = cs.Names()
		snap.counterVals = make([]int64, len(snap.counterNames))
		for i, n := range snap.counterNames {
			snap.counterVals[i] = cs.Get(n)
		}
	}
	return snap
}

// fnv1a64 folds v into h one byte at a time (FNV-1a), the stable hash
// behind tenant→shard routing. Stability matters: the routing test pins
// assignments so restarts and rebuilds keep tenants on their shards.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnv1a64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime64
		v >>= 8
	}
	return h
}

// shardIndex routes (tenant, key) to a shard. Key zero pins the tenant to
// one shard; a nonzero key spreads the tenant's requests across all shards
// while staying deterministic per key.
func shardIndex(tenant int, key uint64, shards int) int {
	if shards <= 1 {
		return 0
	}
	h := fnv1a64(fnvOffset64, uint64(tenant))
	if key != 0 {
		h = fnv1a64(h, key)
	}
	return int(h % uint64(shards))
}
