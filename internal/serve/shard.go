package serve

import (
	"sync"
	"sync/atomic"
	"time"

	"ssdkeeper/internal/keeper"
	"ssdkeeper/internal/learn"
	"ssdkeeper/internal/sim"
	"ssdkeeper/internal/simrun"
	"ssdkeeper/internal/ssd"
	"ssdkeeper/internal/stats"
	"ssdkeeper/internal/trace"
)

// Per-shard actor model: each shard owns a complete serving stack — a
// seasoned device, its engine, its keeper controller, its admission queues —
// and a single goroutine is the only code that touches any of it. Handlers
// never lock a shard; they push a message into the shard's bounded mailbox
// and wait on the request's reply channel. One wakeup drains up to BatchMax
// messages, so a burst of submissions costs one scheduler round trip, not
// one per request.
//
// The only state shared between handler goroutines and the shard goroutine
// is atomic: the per-tenant occupancy counter (admission bounds are enforced
// synchronously, before the mailbox), the admission/rejection counters, and
// each Pending's state word.

// Pending lifecycle, a CAS state machine shared by the shard goroutine
// (dispatch, completion, drain) and the waiter (cancellation). Whoever wins
// the transition into stateResolved delivers the outcome — exactly once.
const (
	stateQueued     int32 = iota // admitted; not yet in the device
	stateDispatched              // submitted to the device
	stateResolved                // outcome delivered (or abandoned by cancel)
)

// Tenant gate states (Node.gates): the per-tenant admission lifecycle.
// Draining marks a DrainTenant in progress; Parked means the tenant's
// record log has been handed off and the gate stays shut until an explicit
// release (or the tenant is re-seated here by a handoff replay).
const (
	tenantActive int32 = iota
	tenantDraining
	tenantParked
)

type msgKind uint8

const (
	msgSubmit        msgKind = iota // p: an admitted request
	msgAdvance                      // advance to the wall target; reply sim now
	msgSnapshot                     // advance and reply a metrics snapshot
	msgReap                         // p: canceled while queued; free its slot
	msgDrain                        // reject queued, run dry, reply final result
	msgDrainTenant                  // quiesce one tenant; reply its record log
	msgReplayTenant                 // replay a handoff record log for one tenant
	msgReleaseTenant                // reopen one tenant's shard-side gate
)

// shardMsg is one mailbox entry. Submissions carry only p; control messages
// carry a kind and a buffered reply channel; tenant-lifecycle messages add
// the tenant (and, for replay, the handoff records).
type shardMsg struct {
	kind    msgKind
	p       *Pending
	tenant  int
	records []trace.Record
	reply   chan shardReply
}

type shardReply struct {
	now      sim.Time
	snap     *shardSnapshot
	res      ssd.Result
	records  []trace.Record
	tenant   tenantSummary
	replayed int
	err      error
}

// tenantState is one tenant's serving state on one shard. The first group
// is handler-side bookkeeping (atomics, updated before the mailbox); the
// second is owned by the shard goroutine.
type tenantState struct {
	// occupancy counts admitted-but-unfinished requests; admission CASes
	// it below QueueDepth+QueueLen so ErrQueueFull stays a synchronous
	// answer, with no shard round trip.
	occupancy atomic.Int64
	admitted  [2]atomic.Uint64 // by op
	rejFull   atomic.Uint64
	canceled  atomic.Uint64

	queued    []*Pending // admitted, waiting for device capacity
	inflight  int
	completed [2]uint64
	hist      [2]stats.Histogram // sim response latency by op

	// records is the tenant's dispatched-record log: every record that
	// reached the device, at its admission-time arrival stamp, in dispatch
	// order. It is what DrainTenant hands to a migration target, and what
	// a batch replay consumes to reproduce this tenant's device footprint.
	// Nil when Config.DisableTenantLog is set. Replayed handoff records
	// are logged too (at their replay arrivals), so a re-migration carries
	// the tenant's full history.
	records []trace.Record
	// replayed counts handoff records re-dispatched here; they are logged
	// and counted as device requests but excluded from the serving
	// latency histograms (their latency is replay mechanics, not service).
	replayed uint64
	// gated mirrors the node-level tenant gate inside the shard goroutine:
	// set by drainTenant so any submission that raced past the handler's
	// gate check is rejected, cleared by release/replay.
	gated bool
}

// shard is one independent serving slice: device, engine, controller,
// queues, goroutine.
type shard struct {
	id   int
	node *Node

	runner *simrun.Runner
	dev    *ssd.Device
	eng    *sim.Engine
	ctrl   *keeper.Controller // nil when serving without a keeper

	tenants []tenantState

	mailbox chan shardMsg
	stop    chan struct{} // closed by Drain after the final result is out
	done    chan struct{} // closed when the goroutine exits

	// sendMu guards the shard's lifetime: senders hold the read lock
	// across the closed check and the mailbox send, so the shard cannot be
	// closed (goroutine exited, nobody draining the mailbox) mid-send.
	sendMu sync.RWMutex
	closed bool

	// Shard-goroutine-only state.
	draining   bool
	dispatched int            // requests handed to the device (Result.Requests)
	final      *shardSnapshot // metrics state frozen at drain
	finalRes   ssd.Result
}

func newShard(id int, n *Node, k *keeper.Keeper) (*shard, error) {
	runner := simrun.NewInstrumentedRunner(n.cfg.Device)
	// Empty traits leave the device unbound — every tenant on all channels
	// with static allocation — the state the online keeper adapts from.
	sess, err := runner.NewSession(simrun.Config{
		Device: n.cfg.Device, Options: n.cfg.Options, Season: n.cfg.Season,
	})
	if err != nil {
		return nil, err
	}
	dev := sess.Device()
	sd := &shard{
		id:      id,
		node:    n,
		runner:  runner,
		dev:     dev,
		eng:     dev.Engine(),
		tenants: make([]tenantState, n.cfg.Tenants),
		mailbox: make(chan shardMsg, n.cfg.MailboxLen),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	if k != nil {
		sd.ctrl = k.Controller(dev)
		// A live device can idle for many windows; adapting on empty
		// windows would re-bind channels on zero information.
		sd.ctrl.SkipIdle = true
		if n.cfg.Sink != nil {
			sd.ctrl.Sink = shardSink{id: id, sink: n.cfg.Sink}
		}
		// Each shard gets its own exploration stream so one shard's draws
		// never perturb another's.
		sd.ctrl.EnableExploration(n.cfg.ExploreRate, n.cfg.ExploreSeed+int64(id))
	}
	go sd.loop()
	return sd, nil
}

// shardSink stamps each emitted sample with its shard before fanning out to
// the node-level sink.
type shardSink struct {
	id   int
	sink learn.Sink
}

func (s shardSink) Offer(smp learn.Sample) {
	smp.Shard = s.id
	s.sink.Offer(smp)
}

// enter pins the shard open for one mailbox send; the caller must call
// leave after the send. Returns false once the shard is closed.
func (sd *shard) enter() bool {
	sd.sendMu.RLock()
	if sd.closed {
		sd.sendMu.RUnlock()
		return false
	}
	return true
}

func (sd *shard) leave() { sd.sendMu.RUnlock() }

// send delivers a control message and waits for the reply. ok is false when
// the shard is already closed (post-drain).
func (sd *shard) send(kind msgKind) (shardReply, bool) {
	return sd.sendMsg(shardMsg{kind: kind})
}

// sendMsg delivers an arbitrary control message (filling in the reply
// channel) and waits for the reply.
func (sd *shard) sendMsg(msg shardMsg) (shardReply, bool) {
	if !sd.enter() {
		return shardReply{}, false
	}
	msg.reply = make(chan shardReply, 1)
	sd.mailbox <- msg
	sd.leave()
	return <-msg.reply, true
}

// minWake floors the pacing timer so float rounding near a due event cannot
// busy-spin the loop.
const minWake = 100 * time.Microsecond

// loop is the shard goroutine: the only code that touches the engine,
// device, controller, queues, and histograms.
func (sd *shard) loop() {
	defer close(sd.done)
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()
	// Pacing arms only once Start is called: an un-started server advances
	// purely on messages, which keeps fake-clock tests deterministic.
	paced := false
	startc := sd.node.startc
	for {
		select {
		case msg := <-sd.mailbox:
			sd.handle(msg)
			sd.drainMailbox()
		case <-startc:
			startc = nil
			paced = true
		case <-timer.C:
			if !sd.draining {
				sd.advanceTo(sd.node.wallTarget())
			}
		case <-sd.stop:
			sd.sweepMailbox()
			return
		}
		if paced && !sd.draining {
			timer.Reset(sd.nextWake())
		}
	}
}

// drainMailbox batches: having woken for one message, consume whatever else
// is already queued (up to BatchMax) before going back to sleep.
func (sd *shard) drainMailbox() {
	for i := 1; i < sd.node.cfg.BatchMax; i++ {
		select {
		case msg := <-sd.mailbox:
			sd.handle(msg)
		default:
			return
		}
	}
}

// sweepMailbox answers stragglers after stop: messages already in the
// mailbox when the shard closed (drain has run, so submissions reject and
// control messages reply from the frozen final state).
func (sd *shard) sweepMailbox() {
	for {
		select {
		case msg := <-sd.mailbox:
			sd.handle(msg)
		default:
			return
		}
	}
}

// nextWake sleeps until the earlier of the next engine event's wall due
// time and one pacer tick (keeper epoch boundaries are not engine events,
// so the tick cap keeps adaptation tracking time across idle gaps).
func (sd *shard) nextWake() time.Duration {
	d := sd.node.cfg.TickEvery
	if at, ok := sd.eng.NextAt(); ok {
		if w := sd.node.wallUntil(at); w < d {
			d = w
		}
	}
	if d < minWake {
		d = minWake
	}
	return d
}

func (sd *shard) handle(msg shardMsg) {
	switch msg.kind {
	case msgSubmit:
		sd.admit(msg.p)
	case msgAdvance:
		if !sd.draining {
			sd.advanceTo(sd.node.wallTarget())
		}
		msg.reply <- shardReply{now: sd.eng.Now()}
	case msgSnapshot:
		if !sd.draining {
			sd.advanceTo(sd.node.wallTarget())
		}
		msg.reply <- shardReply{now: sd.eng.Now(), snap: sd.snapshot()}
	case msgReap:
		sd.reap(msg.p)
		msg.reply <- shardReply{}
	case msgDrain:
		msg.reply <- shardReply{res: sd.drainNow()}
	case msgDrainTenant:
		recs, sum := sd.drainTenant(msg.tenant)
		msg.reply <- shardReply{now: sd.eng.Now(), records: recs, tenant: sum}
	case msgReplayTenant:
		done, err := sd.replayTenant(msg.tenant, msg.records)
		msg.reply <- shardReply{now: sd.eng.Now(), replayed: done, err: err}
	case msgReleaseTenant:
		ts := &sd.tenants[msg.tenant]
		ts.gated = false
		if sd.ctrl != nil {
			sd.ctrl.AttachTenant(msg.tenant)
		}
		msg.reply <- shardReply{}
	}
}

// advanceTo runs the engine forward (firing completions, which dispatch
// queued work in turn) and ticks the keeper so epochs track time across
// arrival gaps.
func (sd *shard) advanceTo(target sim.Time) {
	sd.eng.RunUntil(target)
	if sd.ctrl != nil {
		sd.ctrl.Tick(target)
	}
}

// admit processes one submission. The request arrives at its admission-time
// stamp (not the processing instant), so arrival times are independent of
// mailbox lag — the property the drain-equals-batch-replay invariant and
// the fake-clock tests rest on.
func (sd *shard) admit(p *Pending) {
	ts := &sd.tenants[p.req.Tenant]
	if sd.draining || ts.gated {
		// Raced past the handler's draining/gate check; undo the optimistic
		// admission accounting and reject.
		ts.admitted[p.req.Op].Add(^uint64(0))
		rejErr := ErrDraining
		if !sd.draining {
			rejErr = ErrTenantMigrating
			sd.node.rejMigr.Add(1)
		} else {
			sd.node.rejDrain.Add(1)
		}
		if p.state.CompareAndSwap(stateQueued, stateResolved) {
			p.resolve(outcome{err: rejErr})
		}
		sd.freeSlot(p, ts)
		return
	}
	if p.state.Load() == stateResolved { // canceled before processing
		sd.freeSlot(p, ts)
		return
	}
	target := p.stamp
	if now := sd.eng.Now(); target < now {
		target = now
	}
	sd.advanceTo(target)
	p.arrival = sd.eng.Now()
	if sd.ctrl != nil {
		sd.ctrl.Observe(p.arrival, p.req.Record(p.arrival))
	}
	if ts.inflight < sd.node.cfg.QueueDepth {
		sd.dispatch(p, ts)
	} else {
		ts.queued = append(ts.queued, p)
	}
}

// dispatch hands a request to the device. The completion callback runs
// inside the engine — shard-goroutine context — so it touches shard state
// freely; only the resolution CAS and the occupancy release are shared.
func (sd *shard) dispatch(p *Pending, ts *tenantState) {
	if !p.state.CompareAndSwap(stateQueued, stateDispatched) {
		sd.freeSlot(p, ts) // canceled between queueing and dispatch
		return
	}
	ts.inflight++
	rec := p.req.Record(p.arrival)
	err := sd.dev.SubmitAt(rec, p.arrival, func(lat sim.Time) {
		ts.inflight--
		ts.occupancy.Add(-1)
		ts.completed[p.req.Op]++
		ts.hist[p.req.Op].Add(lat)
		if sd.ctrl != nil {
			// Feed the outcome of this epoch's binding back to the learner.
			// Handoff replays (replayTenant) are state transfer, not served
			// traffic, and deliberately stay out of the feed.
			sd.ctrl.Complete(lat)
		}
		if p.state.CompareAndSwap(stateDispatched, stateResolved) {
			p.resolve(outcome{resp: Response{Latency: lat, At: sd.eng.Now()}})
		}
		sd.dispatchQueued(ts)
	})
	if err != nil {
		// A submit failure is a server bug or a device-full condition;
		// fail this request and remember the first error for /healthz.
		ts.inflight--
		ts.occupancy.Add(-1)
		sd.node.poison(err)
		if p.state.CompareAndSwap(stateDispatched, stateResolved) {
			p.resolve(outcome{err: err})
		}
		return
	}
	sd.dispatched++
	if !sd.node.cfg.DisableTenantLog {
		ts.records = append(ts.records, rec)
	}
}

// dispatchQueued moves queued requests into the device while the tenant has
// capacity. A queued request's arrival stays its admission time, so the
// recorded latency includes the time spent waiting for capacity.
func (sd *shard) dispatchQueued(ts *tenantState) {
	for ts.inflight < sd.node.cfg.QueueDepth && len(ts.queued) > 0 {
		p := ts.queued[0]
		ts.queued = ts.queued[1:]
		sd.dispatch(p, ts)
	}
}

// freeSlot releases a request's occupancy slot exactly once across the
// reap / dispatch-skip / drain paths. reaped is shard-goroutine-only.
func (sd *shard) freeSlot(p *Pending, ts *tenantState) {
	if !p.reaped {
		p.reaped = true
		ts.occupancy.Add(-1)
	}
}

// reap removes a canceled request from its tenant's queue (the waiter
// already won the resolution CAS) and frees its slot.
func (sd *shard) reap(p *Pending) {
	ts := &sd.tenants[p.req.Tenant]
	for i, q := range ts.queued {
		if q == p {
			ts.queued = append(ts.queued[:i], ts.queued[i+1:]...)
			break
		}
	}
	sd.freeSlot(p, ts)
}

// drainTenant quiesces exactly one tenant on this shard: everything already
// admitted — queued or in flight — is dispatched and completed through the
// normal engine path (the engine steps forward event by event, which may
// surface other tenants' completions early relative to wall time; their
// sim-time latencies are unaffected). It then gates the tenant inside the
// shard, detaches it from the keeper's feature window, and returns a copy
// of its dispatched-record log plus a summary. The log replayed as a batch
// reproduces the tenant's device footprint — the tenant-granular face of
// the drain==batch-replay invariant.
func (sd *shard) drainTenant(tenant int) ([]trace.Record, tenantSummary) {
	ts := &sd.tenants[tenant]
	if sd.draining {
		return nil, tenantSummary{}
	}
	// Catch up to wall first so the quiesce starts from the paced present.
	sd.advanceTo(sd.node.wallTarget())
	for {
		sd.dispatchQueued(ts)
		if ts.inflight == 0 && len(ts.queued) == 0 {
			break
		}
		if !sd.eng.Step() {
			break // canceled stragglers: queue holds only resolved entries
		}
	}
	// Sweep canceled-but-unreaped stragglers so the queue is truly empty.
	for _, p := range ts.queued {
		sd.freeSlot(p, ts)
	}
	ts.queued = nil
	ts.gated = true
	if sd.ctrl != nil {
		sd.ctrl.Tick(sd.eng.Now())
		sd.ctrl.DetachTenant(tenant)
	}
	recs := append([]trace.Record(nil), ts.records...)
	return recs, sd.summarize(ts)
}

// replayTenant re-dispatches a handoff record log into this shard's device
// for one tenant, at the current simulated instant (arrival order
// preserved, original timestamps discarded: the target's own admission
// times are what its invariant replays). Replayed records share the
// tenant's in-device capacity with live traffic but bypass the admission
// queue bound — a handoff is state transfer, not client load — and they do
// not feed the keeper's feature window or the serving histograms. The call
// returns once every replayed record has completed, so the tenant's
// footprint is fully materialized before the router flips traffic over.
func (sd *shard) replayTenant(tenant int, recs []trace.Record) (int, error) {
	ts := &sd.tenants[tenant]
	if sd.draining {
		return 0, ErrDraining
	}
	ts.gated = false
	sd.advanceTo(sd.node.wallTarget())
	replayed := 0
	for _, r := range recs {
		for ts.inflight >= sd.node.cfg.QueueDepth {
			if !sd.eng.Step() {
				break
			}
		}
		r.Time = sd.eng.Now()
		r.Tenant = tenant
		err := sd.dev.SubmitAt(r, r.Time, func(lat sim.Time) {
			ts.inflight--
			ts.replayed++
			sd.dispatchQueued(ts)
		})
		if err != nil {
			sd.node.poison(err)
			return replayed, err
		}
		ts.inflight++
		sd.dispatched++
		if !sd.node.cfg.DisableTenantLog {
			ts.records = append(ts.records, r)
		}
		replayed++
	}
	for ts.inflight > 0 && sd.eng.Step() {
	}
	if sd.ctrl != nil {
		sd.ctrl.AttachTenant(tenant)
	}
	return replayed, nil
}

// summarize copies one tenant's device-state summary (shard-goroutine
// context).
func (sd *shard) summarize(ts *tenantState) tenantSummary {
	return tenantSummary{
		Completed: ts.completed,
		Hist:      ts.hist,
		Replayed:  ts.replayed,
		Records:   len(ts.records),
	}
}

// drainNow rejects everything queued, runs the engine dry so every
// dispatched request completes, and freezes the final result and metrics
// snapshot. Idempotent within the shard goroutine.
func (sd *shard) drainNow() ssd.Result {
	if sd.draining {
		return sd.finalRes
	}
	sd.draining = true
	for ti := range sd.tenants {
		ts := &sd.tenants[ti]
		for _, p := range ts.queued {
			if p.state.CompareAndSwap(stateQueued, stateResolved) {
				sd.node.rejDrain.Add(1)
				p.resolve(outcome{err: ErrDraining})
			}
			sd.freeSlot(p, ts)
		}
		ts.queued = nil
	}
	// No more arrivals: run the engine dry so every in-flight request
	// completes and resolves its waiter.
	sd.eng.Run()
	sd.finalRes = sd.dev.Snapshot(sd.dispatched)
	sd.final = sd.snapshot()
	return sd.finalRes
}

// tenantSnapshot is one tenant's metrics state at snapshot time.
type tenantSnapshot struct {
	queued    int
	inflight  int
	completed [2]uint64
	replayed  uint64
	hist      [2]stats.Histogram
}

// shardSnapshot is everything the metrics renderer needs from one shard,
// copied inside the shard goroutine so rendering holds no locks.
type shardSnapshot struct {
	simNow       sim.Time
	tenants      []tenantSnapshot
	switches     int
	last         keeper.Switch
	hasLast      bool
	polVersion   string // policy version applied at the last adaptation epoch
	shadowAgree  uint64
	shadowDiv    uint64
	shadowErrs   uint64
	counterNames []string
	counterVals  []int64
	health       ssd.HealthSnapshot // zero value on an immortal device
}

func (sd *shard) snapshot() *shardSnapshot {
	snap := &shardSnapshot{
		simNow:  sd.eng.Now(),
		tenants: make([]tenantSnapshot, len(sd.tenants)),
		health:  sd.dev.HealthSnapshot(),
	}
	for i := range sd.tenants {
		ts := &sd.tenants[i]
		snap.tenants[i] = tenantSnapshot{
			queued:    len(ts.queued),
			inflight:  ts.inflight,
			completed: ts.completed,
			replayed:  ts.replayed,
			hist:      ts.hist, // value copy: Histogram is a plain array struct
		}
	}
	if sd.ctrl != nil {
		snap.switches = sd.ctrl.SwitchCount()
		snap.last, snap.hasLast = sd.ctrl.LastSwitch()
		snap.polVersion = sd.ctrl.PolicyVersion()
		snap.shadowAgree, snap.shadowDiv, snap.shadowErrs = sd.ctrl.ShadowStats()
	}
	if cs := sd.runner.Counters(); cs != nil {
		snap.counterNames = cs.Names()
		snap.counterVals = make([]int64, len(snap.counterNames))
		for i, name := range snap.counterNames {
			snap.counterVals[i] = cs.Get(name)
		}
	}
	return snap
}

// fnv1a64 folds v into h one byte at a time (FNV-1a), the stable hash
// behind tenant→shard routing. Stability matters: the routing test pins
// assignments so restarts and rebuilds keep tenants on their shards.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnv1a64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime64
		v >>= 8
	}
	return h
}

// shardIndex routes (tenant, key) to a shard. Key zero pins the tenant to
// one shard; a nonzero key spreads the tenant's requests across all shards
// while staying deterministic per key.
func shardIndex(tenant int, key uint64, shards int) int {
	if shards <= 1 {
		return 0
	}
	h := fnv1a64(fnvOffset64, uint64(tenant))
	if key != 0 {
		h = fnv1a64(h, key)
	}
	return int(h % uint64(shards))
}
