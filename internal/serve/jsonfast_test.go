package serve

import (
	"strings"
	"testing"

	"ssdkeeper/internal/trace"
)

// TestDecodeJSONRequestMatchesStd drives both decoders over inputs chosen to
// probe every compatibility clause in the jsonfast.go contract: both must
// agree on accept/reject, and on accepted inputs the Requests must be equal.
func TestDecodeJSONRequestMatchesStd(t *testing.T) {
	inputs := []string{
		// Plain accepted forms.
		`{"tenant":2,"op":"write","offset":8192,"size":4096}`,
		`{"tenant":1,"op":"read","offset":0,"size":512,"key":5}`,
		`{"tenant":0,"op":"R","offset":0,"size":1}`,
		`{"tenant":0,"op":"WRITE","offset":0,"size":1}`,
		"\t {\n\"tenant\" : 3 ,\n\"op\" : \"w\" ,\n\"offset\" : 1 ,\n\"size\" : 2\n} ",
		// Case-insensitive keys (stdlib matches struct fields liberally).
		`{"Tenant":2,"OP":"read","Offset":1,"SIZE":2}`,
		// Duplicate keys: last wins.
		`{"op":"read","op":"write","tenant":1,"offset":0,"size":8}`,
		// null is a no-op for any known field.
		`{"tenant":null,"op":"read","offset":null,"size":4,"key":null}`,
		// Escapes inside the op string decode before matching.
		`{"op":"read","tenant":0,"offset":0,"size":1}`,
		`{"op":"W","tenant":0,"offset":0,"size":1}`,
		// Negative zero and extreme magnitudes.
		`{"tenant":-0,"op":"r","offset":-9223372036854775808,"size":1}`,
		`{"op":"r","offset":9223372036854775807,"size":1}`,
		`{"op":"r","offset":0,"size":1,"key":18446744073709551615}`,
		// Trailing bytes after the object are ignored by Decode.
		`{"op":"read","tenant":1,"offset":0,"size":2} trailing garbage`,
		`{"op":"read","tenant":1,"offset":0,"size":2}{"op":"write"}`,
		// Rejections: grammar.
		``,
		`{`,
		`}`,
		`{]`,
		`null`,
		`[]`,
		`42`,
		`"op"`,
		`{"op"}`,
		`{"op":}`,
		`{"op":"read"`,
		`{"op":"read",}`,
		`{"op":"read",,}`,
		`{"op":"read" "tenant":1}`,
		`{op:"read"}`,
		`{"op":'read'}`,
		// Rejections: field semantics.
		`{"tenant":0,"op":"transmogrify","offset":0,"size":1}`,
		`{"tenant":0,"op":"read","offset":0,"size":1,"color":"red"}`,
		`{"tenant":"zero","op":"read","offset":0,"size":1}`,
		`{"tenant":true,"op":"read","offset":0,"size":1}`,
		`{"tenant":{},"op":"read","offset":0,"size":1}`,
		`{"tenant":[1],"op":"read","offset":0,"size":1}`,
		`{"op":123}`,
		`{"op":null,"tenant":0,"offset":0,"size":1}`, // op stays unset → unknown op ""
		`{}`,
		// Rejections: number grammar.
		`{"tenant":01,"op":"r","offset":0,"size":1}`,
		`{"tenant":-01,"op":"r","offset":0,"size":1}`,
		`{"tenant":+1,"op":"r","offset":0,"size":1}`,
		`{"tenant":1.5,"op":"r","offset":0,"size":1}`,
		`{"tenant":1e2,"op":"r","offset":0,"size":1}`,
		`{"tenant":1E+2,"op":"r","offset":0,"size":1}`,
		`{"tenant":-,"op":"r","offset":0,"size":1}`,
		`{"offset":9223372036854775808,"op":"r","size":1}`,
		`{"offset":-9223372036854775809,"op":"r","size":1}`,
		`{"key":-1,"op":"r","offset":0,"size":1}`,
		`{"key":18446744073709551616,"op":"r","offset":0,"size":1}`,
		`{"tenant":12x,"op":"r","offset":0,"size":1}`,
		// Rejections: string grammar.
		`{"op":"re` + "\x01" + `ad"}`,
		`{"op":"read\q"}`,
		`{"op":"read\u00"}`,
		`{"op":"read\u00zz"}`,
		`{"op":"an op string far too long to ever spell read or write"}`,
	}
	for _, in := range inputs {
		fast, fastErr := DecodeJSONRequest([]byte(in))
		std, stdErr := decodeJSONRequestStd([]byte(in))
		if fastErr == nil && stdErr != nil {
			t.Errorf("fast accepted %q as %+v but stdlib rejects: %v", in, fast, stdErr)
			continue
		}
		if fastErr != nil && stdErr == nil && asciiNoBackslash(in) {
			t.Errorf("stdlib accepted %q as %+v but fast rejects: %v", in, std, fastErr)
			continue
		}
		if fastErr == nil && fast != std {
			t.Errorf("decoders disagree on %q: fast %+v, stdlib %+v", in, fast, std)
		}
	}
}

// asciiNoBackslash reports whether the input is inside the set where the
// fast decoder promises to accept everything the stdlib accepts (see the
// contract in jsonfast.go).
func asciiNoBackslash(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' || s[i] >= 0x80 {
			return false
		}
	}
	return true
}

// TestDecodeJSONRequestZeroAlloc pins the hot-path property the hand-rolled
// scanner exists for: decoding an accepted request allocates nothing.
// (Rejections construct an error, which necessarily allocates.)
func TestDecodeJSONRequestZeroAlloc(t *testing.T) {
	inputs := [][]byte{
		[]byte(`{"tenant":2,"op":"write","offset":8192,"size":4096,"key":7}`),
		[]byte(`{"op":"read","tenant":0,"offset":0,"size":1}`),
		[]byte(` { "Tenant" : 1 , "OP" : "W" , "offset" : 0 , "size" : 8 , "key" : null } `),
	}
	for _, in := range inputs {
		in := in
		if n := testing.AllocsPerRun(200, func() {
			_, _ = DecodeJSONRequest(in)
		}); n != 0 {
			t.Errorf("DecodeJSONRequest(%s) allocates %.1f objects per call, want 0", in, n)
		}
	}
}

// TestAppendIOResponse checks the manual renderer byte-for-byte against what
// json.Encoder produced before, and that rendering allocates nothing when
// the destination has capacity.
func TestAppendIOResponse(t *testing.T) {
	got := string(AppendIOResponse(nil, 123456, -7))
	want := "{\"latency_ns\":123456,\"sim_ns\":-7}\n"
	if got != want {
		t.Errorf("AppendIOResponse = %q, want %q", got, want)
	}
	buf := make([]byte, 0, 64)
	if n := testing.AllocsPerRun(200, func() {
		buf = AppendIOResponse(buf[:0], 987654321, 123456789)
	}); n != 0 {
		t.Errorf("AppendIOResponse allocates %.1f objects per call, want 0", n)
	}
}

func TestKeyFold(t *testing.T) {
	yes := [][2]string{{"tenant", "tenant"}, {"Tenant", "tenant"}, {"TENANT", "tenant"}, {"oP", "op"}}
	for _, c := range yes {
		if !keyFold([]byte(c[0]), c[1]) {
			t.Errorf("keyFold(%q, %q) = false", c[0], c[1])
		}
	}
	no := [][2]string{{"tenants", "tenant"}, {"tenan", "tenant"}, {"teñant", "tenant"}, {"", "op"}}
	for _, c := range no {
		if keyFold([]byte(c[0]), c[1]) {
			t.Errorf("keyFold(%q, %q) = true", c[0], c[1])
		}
	}
}

func TestOpFromBytes(t *testing.T) {
	for _, s := range []string{"R", "r", "read", "Read", "READ"} {
		if op, ok := opFromBytes([]byte(s)); !ok || op != trace.Read {
			t.Errorf("opFromBytes(%q) = %v, %v", s, op, ok)
		}
	}
	for _, s := range []string{"W", "w", "write", "Write", "WRITE"} {
		if op, ok := opFromBytes([]byte(s)); !ok || op != trace.Write {
			t.Errorf("opFromBytes(%q) = %v, %v", s, op, ok)
		}
	}
	for _, s := range []string{"", "x", "rr", "trim", strings.Repeat("w", 20)} {
		if _, ok := opFromBytes([]byte(s)); ok {
			t.Errorf("opFromBytes(%q) accepted", s)
		}
	}
}
