package serve

import (
	"errors"
	"fmt"
	"sort"

	"ssdkeeper/internal/stats"
	"ssdkeeper/internal/trace"
)

// Per-tenant lifecycle: the node-side half of a fleet migration. DrainTenant
// quiesces one tenant and hands back its dispatched-record log;
// ReplayTenant seats that log on a target node; ReleaseTenant reopens a
// parked tenant's gate. The fleet router (internal/fleet) sequences these
// across two nodes — gate at the router, drain on the source, replay on the
// target, flip the ring override, release — but each primitive is also
// usable standalone over HTTP (/tenant/drain, /tenant/handoff,
// /tenant/release).

// ErrNoTenantLog means DrainTenant was called on a node built with
// DisableTenantLog: there is no record log to hand off.
var ErrNoTenantLog = errors.New("serve: tenant record log disabled")

// tenantSummary is one shard's view of a tenant's serving state, copied
// inside the shard goroutine at drain time.
type tenantSummary struct {
	Completed [2]uint64
	Hist      [2]stats.Histogram
	Replayed  uint64
	Records   int
}

// TenantDrain is the handoff package DrainTenant returns: the tenant's
// merged dispatched-record log (time-ordered across shards) plus a summary
// of the device state it represents. It round-trips as JSON over
// /tenant/drain → /tenant/handoff.
type TenantDrain struct {
	Tenant  int            `json:"tenant"`
	Records []trace.Record `json:"records"`

	// CompletedReads/Writes count client requests this node answered for
	// the tenant; Replayed counts handoff records re-dispatched here by a
	// previous migration (device footprint, not client completions).
	CompletedReads  uint64 `json:"completed_reads"`
	CompletedWrites uint64 `json:"completed_writes"`
	Replayed        uint64 `json:"replayed"`

	// P50NS/P99NS summarize the tenant's simulated response latency on
	// this node (reads and writes merged), for rebalancer decisions.
	P50NS int64 `json:"p50_ns"`
	P99NS int64 `json:"p99_ns"`

	// SimNS is the source node's simulated time when the drain completed.
	SimNS int64 `json:"sim_ns"`
}

// DrainTenant quiesces exactly one tenant across the node's shards:
// everything the tenant has admitted — queued or in flight — completes
// through the normal engine path, the tenant's admission gate closes
// (subsequent submissions reject with ErrTenantMigrating), its feature
// contributions detach from the keeper windows, and its dispatched-record
// log is returned. Other tenants are untouched. After DrainTenant the
// tenant is parked: the node reports not-ready until ReleaseTenant (or a
// ReplayTenant re-seating it) reopens the gate.
//
// The tenant-granular invariant mirrors the whole-node one: the returned
// log, replayed as a batch at its recorded arrival times, reproduces the
// tenant's footprint on this node's devices (see TestDrainTenantMatchesBatchReplay).
func (n *Node) DrainTenant(tenant int) (*TenantDrain, error) {
	if tenant < 0 || tenant >= n.cfg.Tenants {
		return nil, fmt.Errorf("serve: tenant %d out of range [0,%d)", tenant, n.cfg.Tenants)
	}
	if n.cfg.DisableTenantLog {
		return nil, ErrNoTenantLog
	}
	if n.draining.Load() {
		return nil, ErrDraining
	}
	// The gate flip is the linearization point: from here on SubmitAsync
	// rejects the tenant, so the quiesce below sees a finite workload.
	// (A submission that raced past the gate check lands in a shard
	// mailbox behind msgDrainTenant and is rejected by the shard-local
	// gate instead.)
	if !n.gates[tenant].CompareAndSwap(tenantActive, tenantDraining) {
		return nil, ErrTenantMigrating
	}
	n.parked.Add(1)

	td := &TenantDrain{Tenant: tenant}
	var hist stats.Histogram
	for _, sd := range n.shards {
		r, ok := sd.sendMsg(shardMsg{kind: msgDrainTenant, tenant: tenant})
		if !ok {
			continue // shard closed under a concurrent whole-node drain
		}
		td.Records = append(td.Records, r.records...)
		td.CompletedReads += r.tenant.Completed[trace.Read]
		td.CompletedWrites += r.tenant.Completed[trace.Write]
		td.Replayed += r.tenant.Replayed
		hist.Merge(&r.tenant.Hist[trace.Read])
		hist.Merge(&r.tenant.Hist[trace.Write])
		if int64(r.now) > td.SimNS {
			td.SimNS = int64(r.now)
		}
	}
	// Shard logs are each dispatch-ordered; a stable merge by arrival time
	// yields one fleet-wide order a target can replay directly.
	sort.SliceStable(td.Records, func(i, j int) bool {
		return td.Records[i].Time < td.Records[j].Time
	})
	if hist.Count() > 0 {
		td.P50NS = int64(hist.P50())
		td.P99NS = int64(hist.P99())
	}
	n.gates[tenant].Store(tenantParked)
	return td, nil
}

// ReplayTenant seats a handoff record log on this node: the records are
// re-dispatched into the tenant's home shard at the current simulated
// instant, order preserved, so the tenant's device footprint (FTL mappings,
// wear, feature-relevant state) is materialized here before the router
// flips traffic over. Replay is state transfer: it produces no client
// completions and feeds no keeper features, so completions are neither
// lost nor duplicated across a migration. The tenant's gate is (re)opened
// on success.
//
// Spread keys collapse on replay: a tenant that spread across the source's
// shards via per-request keys is replayed onto its single home shard here,
// a documented simplification (the footprint is preserved; the spreading
// re-establishes itself as live traffic arrives).
func (n *Node) ReplayTenant(tenant int, records []trace.Record) (int, error) {
	if tenant < 0 || tenant >= n.cfg.Tenants {
		return 0, fmt.Errorf("serve: tenant %d out of range [0,%d)", tenant, n.cfg.Tenants)
	}
	if n.draining.Load() {
		return 0, ErrDraining
	}
	// Accept the handoff whether the tenant is live here (fresh target) or
	// parked (returning to a node it once drained from). Either way the
	// gate holds tenantDraining for the duration, so the node reports
	// not-ready while the handoff is in flight.
	wasActive := n.gates[tenant].CompareAndSwap(tenantActive, tenantDraining)
	if !wasActive && !n.gates[tenant].CompareAndSwap(tenantParked, tenantDraining) {
		return 0, ErrTenantMigrating
	}
	if wasActive {
		n.parked.Add(1)
	}
	home := shardIndex(tenant, 0, len(n.shards))
	r, ok := n.shards[home].sendMsg(shardMsg{
		kind: msgReplayTenant, tenant: tenant, records: records,
	})
	if !ok {
		n.gates[tenant].Store(tenantParked)
		return 0, ErrDraining
	}
	if r.err != nil {
		n.gates[tenant].Store(tenantParked)
		return r.replayed, r.err
	}
	// Clear any residual shard-local gates (the home shard's was cleared
	// by the replay handler; others matter only for a returning tenant
	// that had spread across shards before draining).
	for i, sd := range n.shards {
		if i == home {
			continue
		}
		sd.sendMsg(shardMsg{kind: msgReleaseTenant, tenant: tenant})
	}
	n.gates[tenant].Store(tenantActive)
	n.parked.Add(-1)
	return r.replayed, nil
}

// ReleaseTenant reopens a parked tenant's admission gate — the final step
// of a migration on the source (harmless there: the router no longer
// routes the tenant here) and the rollback step of an aborted one.
func (n *Node) ReleaseTenant(tenant int) error {
	if tenant < 0 || tenant >= n.cfg.Tenants {
		return fmt.Errorf("serve: tenant %d out of range [0,%d)", tenant, n.cfg.Tenants)
	}
	if !n.gates[tenant].CompareAndSwap(tenantParked, tenantActive) {
		return fmt.Errorf("serve: tenant %d is not parked", tenant)
	}
	for _, sd := range n.shards {
		sd.sendMsg(shardMsg{kind: msgReleaseTenant, tenant: tenant})
	}
	n.parked.Add(-1)
	return nil
}

// TenantParked reports whether the tenant's gate is shut post-drain.
func (n *Node) TenantParked(tenant int) bool {
	return tenant >= 0 && tenant < n.cfg.Tenants &&
		n.gates[tenant].Load() == tenantParked
}
