package serve

import (
	"testing"
)

// FuzzDecode drives both daemon request decoders — the HTTP/JSON form and
// the load-generator line protocol — with arbitrary input: neither may
// panic, and whatever the line decoder accepts must survive an
// encode/decode round trip. The seeds reuse the trace parser's fuzz corpus
// shapes (MSR-style CSV rows) alongside native forms, since operators pipe
// trace-derived files into /io/batch.
func FuzzDecode(f *testing.F) {
	// Native line-protocol forms.
	f.Add("0 R 0 4096")
	f.Add("3 W 16384 32768")
	f.Add("1,r,0,512")
	f.Add("0 R 0 4096 # comment")
	f.Add("")
	f.Add("\n")
	f.Add("junk")
	f.Add("-1 R -5 0")
	f.Add("9999999999999999999 R 0 1")
	// MSR-style rows from the trace fuzz corpus (field counts differ; the
	// decoder must reject them gracefully, never panic).
	f.Add("100,hostA,0,Read,0,4096,0")
	f.Add("110,hostB,0,Write,4096,8192,0")
	f.Add("100,h,0,Read,0,4096")
	f.Add("0,,,R,0,0")
	// JSON forms.
	f.Add(`{"tenant":0,"op":"read","offset":0,"size":4096}`)
	f.Add(`{"tenant":3,"op":"W","offset":16384,"size":1}`)
	f.Add(`{"tenant":0,"op":"read","offset":0,"size":1,"extra":true}`)
	f.Add(`{"tenant":`)
	f.Add(`[]`)
	// Shapes aimed at the hand-rolled scanner's edges: null fields, leading
	// zeros, case-folded and duplicate keys, escapes, trailing data.
	f.Add(`{"tenant":null,"op":"read","offset":null,"size":4}`)
	f.Add(`{"tenant":01,"op":"r","offset":0,"size":1}`)
	f.Add(`{"Tenant":1,"OP":"w","offset":0,"size":1}`)
	f.Add(`{"op":"read","op":"write","offset":0,"size":1}`)
	f.Add(`{"op":"read","tenant":0,"offset":0,"size":1}`)
	f.Add(`{"op":"read\n","tenant":0,"offset":0,"size":1}`)
	f.Add(`{"op":"r","offset":-9223372036854775808,"size":1} tail`)
	f.Add(`{"key":18446744073709551615,"op":"r","offset":0,"size":1}`)
	f.Add(`{"tenant":1e3,"op":"r","offset":0,"size":1}`)

	f.Fuzz(func(t *testing.T, in string) {
		if req, err := DecodeLine(in); err == nil {
			back, err := DecodeLine(EncodeLine(req))
			if err != nil {
				t.Fatalf("accepted line %q re-encodes to unparseable %q: %v",
					in, EncodeLine(req), err)
			}
			if back != req {
				t.Fatalf("line round trip changed %+v to %+v", req, back)
			}
			// Validation must classify, never panic, whatever was decoded.
			_ = req.Validate(4, 64<<20)
		}
		// Differential check of the hand-rolled JSON scanner against the
		// encoding/json reference, per the contract in jsonfast.go: a fast
		// accept must be a stdlib accept with an identical Request, and on
		// all-ASCII escape-free inputs a stdlib accept must be a fast accept.
		req, err := DecodeJSONRequest([]byte(in))
		std, stdErr := decodeJSONRequestStd([]byte(in))
		if err == nil {
			if stdErr != nil {
				t.Fatalf("fast JSON decoder accepted %q as %+v but stdlib rejects: %v", in, req, stdErr)
			}
			if req != std {
				t.Fatalf("JSON decoders disagree on %q: fast %+v, stdlib %+v", in, req, std)
			}
			if req.Op != 0 && req.Op != 1 {
				t.Fatalf("JSON decoder produced op %d from %q", req.Op, in)
			}
			_ = req.Validate(4, 64<<20)
		} else if stdErr == nil && asciiNoBackslash(in) {
			t.Fatalf("stdlib accepted %q as %+v but fast JSON decoder rejects: %v", in, std, err)
		}
	})
}
