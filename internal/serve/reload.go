package serve

import (
	"fmt"
	"net/http"
)

// Model reload protocol:
//
//	POST /model/reload                       promote the registry's latest to active
//	POST /model/reload?version=v007          promote a specific version
//	POST /model/reload?role=shadow&version=v007   install a shadow candidate
//	POST /model/reload?role=shadow&version=none   clear the shadow
//
// The swap is atomic and drain-free: the handler loads and verifies the
// checkpoint, then swaps the provider on the keeper's policy.Source. Each
// shard controller notices the new version at its own next adaptation epoch
// and re-instantiates its private policy instance there — in-flight requests
// are untouched and no request is ever rejected by a reload. The daemon's
// SIGHUP handler drives the same path as POST /model/reload.

// ReloadStatus reports the outcome of one reload.
type ReloadStatus struct {
	Role     string `json:"role"`               // "active" or "shadow"
	Version  string `json:"version"`            // version now published ("" when cleared)
	Previous string `json:"previous,omitempty"` // version published before
}

// Reloader resolves a (role, version) reload request against the daemon's
// checkpoint registry and swaps the provider on the policy source. role is
// "active" or "shadow"; version "" means the registry's latest, and for the
// shadow role "none" clears the candidate. Implementations must be safe for
// concurrent calls (the HTTP handler and a SIGHUP can race).
type Reloader func(role, version string) (ReloadStatus, error)

// SetReloader installs the model-reload hook, enabling POST /model/reload.
// Call before Handler is serving traffic.
func (s *Server) SetReloader(fn Reloader) { s.reloader = fn }

// Reload runs the installed reload hook. Calls are serialized so concurrent
// reloads (HTTP racing SIGHUP) resolve in some order rather than
// interleaving their read-swap sequences.
func (s *Server) Reload(role, version string) (ReloadStatus, error) {
	if s.reloader == nil {
		return ReloadStatus{}, fmt.Errorf("serve: no model registry configured (start with -model-dir)")
	}
	switch role {
	case "active", "shadow":
	default:
		return ReloadStatus{}, fmt.Errorf("serve: unknown reload role %q (want active or shadow)", role)
	}
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	return s.reloader(role, version)
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if s.reloader == nil {
		http.Error(w, "no model registry configured (start with -model-dir)", http.StatusNotImplemented)
		return
	}
	role := r.URL.Query().Get("role")
	if role == "" {
		role = "active"
	}
	st, err := s.Reload(role, r.URL.Query().Get("version"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, st)
}
