package serve

import (
	"strings"
	"testing"

	"ssdkeeper/internal/sim"
	"ssdkeeper/internal/trace"
)

func TestDecodeLine(t *testing.T) {
	cases := []struct {
		in   string
		want Request
	}{
		{"0 R 0 4096", Request{0, trace.Read, 0, 4096, 0}},
		{"3 W 16384 32768", Request{3, trace.Write, 16384, 32768, 0}},
		{"  1   read  0   512 ", Request{1, trace.Read, 0, 512, 0}},
		{"2,w,4096,4096", Request{2, trace.Write, 4096, 4096, 0}},
		{"0 R 0 4096 # trailing comment", Request{0, trace.Read, 0, 4096, 0}},
		{"0 R 0 4096 9", Request{0, trace.Read, 0, 4096, 9}},
		{"1,W,8192,512,42", Request{1, trace.Write, 8192, 512, 42}},
	}
	for _, c := range cases {
		got, err := DecodeLine(c.in)
		if err != nil {
			t.Errorf("DecodeLine(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("DecodeLine(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

func TestDecodeLineRejects(t *testing.T) {
	bad := []string{
		"",
		"# only a comment",
		"0 R 0",                           // too few fields
		"0 R 0 4096 9 9",                  // too many fields
		"x R 0 4096",                      // bad tenant
		"0 Q 0 4096",                      // bad op
		"0 R zero 4096",                   // bad offset
		"0 R 0 lots",                      // bad size
		"0.5 R 0 4096",                    // fractional tenant
		"0 R 0x10 4096",                   // hex offset
		"0 R 0 4096 -1",                   // signed key
		"0 R 0 4096 k",                    // non-numeric key
		"0 R 0 4096 99999999999999999999", // key overflows uint64
	}
	for _, in := range bad {
		if req, err := DecodeLine(in); err == nil {
			t.Errorf("DecodeLine(%q) accepted as %+v", in, req)
		}
	}
}

func TestEncodeLineRoundTrip(t *testing.T) {
	reqs := []Request{
		{0, trace.Read, 0, 4096, 0},
		{3, trace.Write, 1 << 30, 1, 0},
		{2, trace.Write, 8192, 512, 7}, // key round-trips via the 5th field
	}
	for _, req := range reqs {
		back, err := DecodeLine(EncodeLine(req))
		if err != nil {
			t.Fatalf("EncodeLine(%+v) does not re-parse: %v", req, err)
		}
		if back != req {
			t.Errorf("round trip changed %+v to %+v", req, back)
		}
	}
}

func TestDecodeJSONRequest(t *testing.T) {
	req, err := DecodeJSONRequest([]byte(`{"tenant":2,"op":"write","offset":8192,"size":4096}`))
	if err != nil {
		t.Fatal(err)
	}
	if want := (Request{2, trace.Write, 8192, 4096, 0}); req != want {
		t.Errorf("got %+v, want %+v", req, want)
	}
	keyed, err := DecodeJSONRequest([]byte(`{"tenant":1,"op":"read","offset":0,"size":512,"key":5}`))
	if err != nil {
		t.Fatal(err)
	}
	if keyed.Key != 5 {
		t.Errorf("key not decoded: got %+v", keyed)
	}
	bad := []string{
		``,
		`{`,
		`{"tenant":0,"op":"transmogrify","offset":0,"size":1}`,
		`{"tenant":0,"op":"read","offset":0,"size":1,"color":"red"}`, // unknown field
		`{"tenant":"zero","op":"read","offset":0,"size":1}`,
	}
	for _, in := range bad {
		if req, err := DecodeJSONRequest([]byte(in)); err == nil {
			t.Errorf("DecodeJSONRequest(%q) accepted as %+v", in, req)
		}
	}
}

func TestRequestValidate(t *testing.T) {
	ok := Request{Tenant: 1, Op: trace.Read, Offset: 4096, Size: 4096}
	if err := ok.Validate(4, 64<<20); err != nil {
		t.Errorf("valid request rejected: %v", err)
	}
	// The extent check catches an offset+size that together exceed the
	// tenant space even though each alone is in range.
	edge := Request{Tenant: 0, Op: trace.Write, Offset: 64<<20 - 1, Size: 2}
	if err := edge.Validate(4, 64<<20); err == nil {
		t.Error("extent past MaxBytes accepted")
	}
}

func TestRequestRecord(t *testing.T) {
	r := Request{Tenant: 2, Op: trace.Write, Offset: 4096, Size: 512}.Record(7 * sim.Millisecond)
	want := trace.Record{Time: 7 * sim.Millisecond, Tenant: 2, Op: trace.Write, Offset: 4096, Size: 512}
	if r != want {
		t.Errorf("Record = %+v, want %+v", r, want)
	}
}

func TestParseOpSpellings(t *testing.T) {
	for _, s := range []string{"R", "r", "read", "Read", "READ"} {
		if op, err := parseOp(s); err != nil || op != trace.Read {
			t.Errorf("parseOp(%q) = %v, %v", s, op, err)
		}
	}
	for _, s := range []string{"W", "w", "write", "Write", "WRITE"} {
		if op, err := parseOp(s); err != nil || op != trace.Write {
			t.Errorf("parseOp(%q) = %v, %v", s, op, err)
		}
	}
	if _, err := parseOp("trim"); err == nil {
		t.Error("parseOp accepted unknown op")
	}
	if _, err := parseOp(strings.Repeat("R", 2)); err == nil {
		t.Error("parseOp accepted RR")
	}
}
