package learn

import (
	"fmt"
	"time"

	"ssdkeeper/internal/features"
	"ssdkeeper/internal/nn"
	"ssdkeeper/internal/policy"
)

// TrainerConfig parameterizes one retrain over the replay buffer. The
// defaults are deliberately smaller than the offline pipeline's (the buffer
// holds hundreds of samples, not tens of thousands) but flow through the
// same nn training path, so an online checkpoint is structurally identical
// to an offline one.
type TrainerConfig struct {
	Classes    int // strategy-space size (required)
	Hidden     int // hidden-layer width (default 32)
	Iterations int // training epochs (default 80)
	Batch      int // minibatch size (default 16)
	Seed       int64
}

func (c TrainerConfig) withDefaults() TrainerConfig {
	if c.Hidden <= 0 {
		c.Hidden = 32
	}
	if c.Iterations <= 0 {
		c.Iterations = 80
	}
	if c.Batch <= 0 {
		c.Batch = 16
	}
	return c
}

// Retrain fits a fresh classifier on the buffered samples, labelling each
// with the best-measured strategy at its operating point — the online
// analogue of Algorithm 1's offline argmin sweep, with the outcome index
// standing in for exhaustive re-simulation. Every source of randomness
// (weight init, shuffle, minibatch order) is seeded from cfg.Seed, so the
// same buffer and index always produce the same network, bit for bit.
//
// now stamps the checkpoint's TrainedAt; parent records the policy version
// whose traffic the samples were harvested under.
func Retrain(samples []Sample, idx *OutcomeIndex, cfg TrainerConfig, now time.Time, parent string) (*nn.Network, policy.Meta, error) {
	cfg = cfg.withDefaults()
	if cfg.Classes <= 0 {
		return nil, policy.Meta{}, fmt.Errorf("learn: trainer needs the strategy-space size")
	}
	if len(samples) == 0 {
		return nil, policy.Meta{}, fmt.Errorf("learn: empty replay buffer")
	}

	ds := nn.Dataset{X: make([][]float64, 0, len(samples)), Y: make([]int, 0, len(samples))}
	for _, s := range samples {
		label, _, ok := idx.Best(VectorKey(s.Vector))
		if !ok {
			// Buffered samples carry outcomes, so their own measurement is
			// always indexed; this can only mean index and buffer were built
			// from different streams.
			continue
		}
		ds.X = append(ds.X, s.Vector.Input())
		ds.Y = append(ds.Y, label)
	}
	if ds.Len() == 0 {
		return nil, policy.Meta{}, fmt.Errorf("learn: no labellable samples in the buffer")
	}
	ds.Shuffle(cfg.Seed)

	net, err := nn.NewMLP([]int{features.Dim, cfg.Hidden, cfg.Classes}, nn.Logistic{}, cfg.Seed)
	if err != nil {
		return nil, policy.Meta{}, err
	}
	hist, err := nn.Train(net, ds, ds, nn.TrainConfig{
		Iterations: cfg.Iterations,
		BatchSize:  cfg.Batch,
		Optimizer:  nn.NewAdam(0),
		Seed:       cfg.Seed + 1,
		EvalEvery:  cfg.Iterations, // final point only; the buffer is small
	})
	if err != nil {
		return nil, policy.Meta{}, err
	}
	meta := policy.Meta{
		Name:       "online",
		TrainedAt:  now.UTC().Format(time.RFC3339),
		Samples:    ds.Len(),
		Iterations: cfg.Iterations,
		Optimizer:  "adam",
		Activation: "logistic",
		Loss:       hist.FinalLoss,
		Accuracy:   hist.FinalAcc,
		Source:     policy.SourceOnline,
		Parent:     parent,
	}
	return net, meta, nil
}
