// Package learn is the continuous-learning subsystem: it closes the loop the
// source paper leaves open. SSDKeeper's policy is trained once, offline, on
// synthetic workloads; this package turns the serving daemon into a
// self-improving system that harvests live traffic, retrains, evaluates the
// candidate in shadow, and promotes (or demotes) it automatically.
//
// The loop has four stages, each its own piece:
//
//	Outcome feed   — every adaptation epoch, the keeper controller emits one
//	                 Sample: the feature vector it observed, the strategy it
//	                 applied, and the latency/throughput the device realized
//	                 under that strategy until the next epoch. A nil Sink
//	                 keeps today's behavior at zero cost.
//	Replay buffer  — a bounded, deterministic reservoir (Reservoir) plus a
//	                 running outcome index (OutcomeIndex) that aggregates
//	                 observed per-strategy latency by quantized feature key.
//	Trainer        — a periodic retrain over the buffer: each sample is
//	                 labelled with the best-observed strategy for its key (the
//	                 online analogue of the paper's offline argmin sweep) and
//	                 the classifier is refit through the same nn training
//	                 path keeper-train uses. The new checkpoint is written
//	                 into the model registry and installed as shadow.
//	Promotion gate — a state machine (Learner) that watches the candidate's
//	                 shadow agreement and a latency-regret estimate over N
//	                 epochs, atomically promotes it through the policy
//	                 source, and demotes back to the last-good version if
//	                 post-promotion regret regresses.
//
// The subsystem runs in-daemon (ssdkeeperd -learn) or as a sidecar
// (keeper-train -follow <addr>) consuming the daemon's /learn/samples
// export; the Actuator interface abstracts the difference.
package learn

import (
	"math"

	"ssdkeeper/internal/alloc"
	"ssdkeeper/internal/features"
	"ssdkeeper/internal/sim"
)

// Sample is one adaptation epoch's outcome: what the keeper saw, what it
// decided, and what the device realized under that decision until the next
// epoch boundary. The shadow fields carry the candidate's counterfactual
// decision on the same vector, which is what lets the promotion gate tally
// agreement and estimate regret without ever touching the device.
type Sample struct {
	At    sim.Time `json:"at"`    // sim time of the epoch boundary that decided
	Epoch sim.Time `json:"epoch"` // sim duration until the next boundary
	Shard int      `json:"shard"` // serving shard that emitted the sample

	Vector        features.Vector `json:"vector"`
	Strategy      alloc.Strategy  `json:"strategy"`       // strategy applied to the device
	StrategyIndex int             `json:"strategy_index"` // index in the strategy space (-1 outside)
	Explore       bool            `json:"explore,omitempty"`
	PolicyVersion string          `json:"policy_version"`

	ShadowVersion string `json:"shadow_version,omitempty"`
	ShadowIndex   int    `json:"shadow_index"` // candidate's decision (-1: none or error)
	ShadowAgreed  bool   `json:"shadow_agreed,omitempty"`
	ShadowErred   bool   `json:"shadow_erred,omitempty"`

	Completed  uint64   `json:"completed"`      // requests completed during the epoch
	LatencySum sim.Time `json:"latency_sum_ns"` // sum of their simulated latencies
}

// MeanLatency returns the epoch's mean per-request simulated latency, or 0
// when nothing completed.
func (s Sample) MeanLatency() sim.Time {
	if s.Completed == 0 {
		return 0
	}
	return s.LatencySum / sim.Time(s.Completed)
}

// Throughput returns the epoch's completion rate in requests per simulated
// second, or 0 for a zero-length epoch.
func (s Sample) Throughput() float64 {
	if s.Epoch <= 0 {
		return 0
	}
	return float64(s.Completed) / (float64(s.Epoch) / float64(sim.Second))
}

// HasOutcome reports whether the epoch realized a measurable outcome (at
// least one completion); outcome-free samples still count shadow agreement
// but contribute nothing to training or regret.
func (s Sample) HasOutcome() bool { return s.Completed > 0 }

// Sink receives samples as epochs complete. Offer must be safe for
// concurrent use (every serving shard emits into the same sink) and must not
// block for long: it runs inside the shard goroutine that paces the device.
type Sink interface {
	Offer(s Sample)
}

// MultiSink fans each sample out to every sink in order.
type MultiSink []Sink

// Offer forwards the sample to every sink.
func (m MultiSink) Offer(s Sample) {
	for _, sk := range m {
		sk.Offer(s)
	}
}

// Key is a quantized feature vector: samples whose vectors collapse onto the
// same key are treated as the same operating point when aggregating
// outcomes. Quantization is what gives the online labeller its "strategy
// sweep": epochs at the same operating point under different strategies
// (policy drift, exploration, promoted candidates) become comparable
// measurements of one workload.
type Key uint32

// propBits quantizes each tenant proportion to 3 bits (eighths).
const propBits = 3

// VectorKey quantizes a feature vector onto its outcome-aggregation key:
// the intensity level (5 bits), the per-tenant read/write characteristics
// (4 bits), and each tenant proportion rounded to eighths (3 bits each).
func VectorKey(v features.Vector) Key {
	k := Key(v.Intensity) & 0x1f
	shift := 5
	for _, r := range v.ReadChar {
		if r {
			k |= 1 << shift
		}
		shift++
	}
	for _, p := range v.Prop {
		q := int(math.Round(p * float64(int(1)<<propBits-1)))
		if q < 0 {
			q = 0
		}
		if q > int(1)<<propBits-1 {
			q = int(1)<<propBits - 1
		}
		k |= Key(q) << shift
		shift += propBits
	}
	return k
}
