package learn

// OutcomeIndex aggregates realized epoch latency by (operating point,
// strategy): the online substitute for the offline pipeline's exhaustive
// strategy sweep. Offline, every workload is replayed under every strategy
// and labelled with the argmin; online, each epoch measures exactly one
// strategy, so the index accumulates those single measurements across epochs
// (policy drift, exploration, and candidate promotions naturally sample
// different strategies at the same operating point) until an argmin emerges
// from data the device actually served.
//
// The index is unbounded in theory but tiny in practice: keys quantize onto
// a few hundred operating points per workload regime, and each holds one
// small slice per observed strategy.
type OutcomeIndex struct {
	classes int
	cells   map[Key][]outcomeCell
}

type outcomeCell struct {
	count uint64
	sum   float64 // sum of epoch mean per-request latencies, in ns
}

// NewOutcomeIndex returns an empty index over a strategy space of the given
// size.
func NewOutcomeIndex(classes int) *OutcomeIndex {
	return &OutcomeIndex{classes: classes, cells: make(map[Key][]outcomeCell)}
}

// Add folds one epoch's outcome in. Epochs with no completions or with a
// strategy outside the space carry no measurable outcome and are ignored.
func (x *OutcomeIndex) Add(s Sample) {
	if !s.HasOutcome() || s.StrategyIndex < 0 || s.StrategyIndex >= x.classes {
		return
	}
	k := VectorKey(s.Vector)
	row := x.cells[k]
	if row == nil {
		row = make([]outcomeCell, x.classes)
		x.cells[k] = row
	}
	row[s.StrategyIndex].count++
	row[s.StrategyIndex].sum += float64(s.MeanLatency())
}

// Est returns the estimated mean per-request latency (ns) of running
// strategy idx at the operating point, and how many epochs back it.
func (x *OutcomeIndex) Est(k Key, idx int) (est float64, count uint64) {
	row := x.cells[k]
	if row == nil || idx < 0 || idx >= len(row) || row[idx].count == 0 {
		return 0, 0
	}
	c := row[idx]
	return c.sum / float64(c.count), c.count
}

// Best returns the strategy with the lowest estimated latency at the
// operating point, its estimate, and whether any strategy has been measured
// there. Ties break toward the lower index, deterministically.
func (x *OutcomeIndex) Best(k Key) (idx int, est float64, ok bool) {
	row := x.cells[k]
	if row == nil {
		return 0, 0, false
	}
	idx = -1
	for i := range row {
		if row[i].count == 0 {
			continue
		}
		e := row[i].sum / float64(row[i].count)
		if idx < 0 || e < est {
			idx, est = i, e
		}
	}
	return idx, est, idx >= 0
}

// Points returns the number of operating points observed so far.
func (x *OutcomeIndex) Points() int { return len(x.cells) }
