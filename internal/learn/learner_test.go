package learn

import (
	"fmt"
	"testing"
	"time"

	"ssdkeeper/internal/nn"
	"ssdkeeper/internal/policy"
	"ssdkeeper/internal/sim"
)

// memActuator implements Actuator in memory: versions are handed out
// sequentially from v002 (v001 plays the pre-existing active policy), and
// every verb can be made to fail once.
type memActuator struct {
	next      int
	saved     []string
	protected [][]string
	shadow    string // installed shadow ("" when clear)
	active    string
	promoted  []string
	cleared   int
	failWith  error // when set, the next verb fails once
}

func newMemActuator() *memActuator { return &memActuator{next: 2, active: "v001"} }

func (a *memActuator) fail() error {
	err := a.failWith
	a.failWith = nil
	return err
}

func (a *memActuator) SaveCandidate(net *nn.Network, meta policy.Meta, protect []string) (string, error) {
	if err := a.fail(); err != nil {
		return "", err
	}
	v := fmt.Sprintf("v%03d", a.next)
	a.next++
	a.saved = append(a.saved, v)
	a.protected = append(a.protected, protect)
	return v, nil
}

func (a *memActuator) InstallShadow(version string) error {
	if err := a.fail(); err != nil {
		return err
	}
	a.shadow = version
	return nil
}

func (a *memActuator) ClearShadow() error {
	if err := a.fail(); err != nil {
		return err
	}
	a.shadow = ""
	a.cleared++
	return nil
}

func (a *memActuator) Promote(version string) (string, error) {
	if err := a.fail(); err != nil {
		return "", err
	}
	prev := a.active
	a.active = version
	a.promoted = append(a.promoted, version)
	return prev, nil
}

func testLearnerConfig() Config {
	return Config{
		Classes:      3,
		Seed:         3,
		MinSamples:   24,
		RetrainEvery: 24,
		Iterations:   10,
		MinEpochs:    4,
		DemoteWindow: 4,
	}
}

func step(t *testing.T, l *Learner) {
	t.Helper()
	if err := l.Step(time.Unix(0, 0).UTC()); err != nil {
		t.Fatal(err)
	}
}

// feedOutcomes offers n outcome samples across a few operating points so a
// retrain has labellable data.
func feedOutcomes(l *Learner, n int) {
	for i := 0; i < n; i++ {
		l.Offer(outcomeSample(i%4, i%3, sim.Time(100+10*(i%3))*sim.Microsecond))
	}
}

// driveToShadow feeds enough outcomes to trigger the first retrain and
// returns the candidate version now in shadow.
func driveToShadow(t *testing.T, l *Learner, act *memActuator) string {
	t.Helper()
	feedOutcomes(l, 24)
	step(t, l)
	st := l.Status()
	if st.State != StateShadowing || st.Retrains != 1 {
		t.Fatalf("after first retrain: state %q, retrains %d, want shadowing/1", st.State, st.Retrains)
	}
	if st.Candidate == "" || act.shadow != st.Candidate {
		t.Fatalf("candidate %q, installed shadow %q", st.Candidate, act.shadow)
	}
	return st.Candidate
}

// shadowEpoch is one outcome-free epoch carrying the candidate's shadow
// decision — what the promotion gate tallies.
func shadowEpoch(candidate string, agreed, erred bool) Sample {
	s := Sample{
		PolicyVersion: "v001",
		StrategyIndex: 0,
		ShadowVersion: candidate,
		ShadowIndex:   0,
		ShadowAgreed:  agreed,
		ShadowErred:   erred,
	}
	if !agreed && !erred {
		s.ShadowIndex = 1
	}
	return s
}

// servedEpoch is one outcome epoch decided by version at operating point
// point, realizing mean latency lat — what the demotion watch scores.
func servedEpoch(version string, point int, lat sim.Time) Sample {
	s := outcomeSample(point, 1, lat)
	s.PolicyVersion = version
	return s
}

// TestLearnerPromotesAndConfirms drives the full happy path: retrain →
// shadow agreement → promotion → clean watch window → candidate becomes
// last-good.
func TestLearnerPromotesAndConfirms(t *testing.T) {
	act := newMemActuator()
	l, err := New(testLearnerConfig(), act)
	if err != nil {
		t.Fatal(err)
	}
	cand := driveToShadow(t, l, act)

	// Fewer shadow decisions than MinEpochs: the gate holds.
	for i := 0; i < 3; i++ {
		l.Offer(shadowEpoch(cand, true, false))
	}
	step(t, l)
	if st := l.Status(); st.State != StateShadowing || st.CandidateAgree != 3 {
		t.Fatalf("gate ruled early: state %q, agree %d", st.State, st.CandidateAgree)
	}

	// One more agreement clears MinEpochs; the gate promotes.
	l.Offer(shadowEpoch(cand, true, false))
	step(t, l)
	st := l.Status()
	if st.State != StateWatching || st.Promotions != 1 {
		t.Fatalf("after gate: state %q, promotions %d, want watching/1", st.State, st.Promotions)
	}
	if act.active != cand || act.shadow != "" {
		t.Fatalf("active %q shadow %q, want %q and clear", act.active, act.shadow, cand)
	}
	if st.LastGood != "v001" {
		t.Errorf("last-good = %q, want the displaced v001", st.LastGood)
	}

	// The candidate serves a healthy watch window: confirmed, back to idle.
	for i := 0; i < 4; i++ {
		l.Offer(servedEpoch(cand, i%4, 110*sim.Microsecond))
	}
	step(t, l)
	st = l.Status()
	if st.State != StateIdle || st.Demotions != 0 || st.LastGood != cand {
		t.Fatalf("after watch: state %q, demotions %d, last-good %q, want idle/0/%s",
			st.State, st.Demotions, st.LastGood, cand)
	}
	if act.active != cand {
		t.Errorf("confirmation rolled the active policy to %q", act.active)
	}
}

// TestLearnerDemotesOnRegression: a promoted candidate whose realized regret
// blows past the promotion baseline is rolled back to last-good — the
// acceptance criterion's demotion-on-regression path.
func TestLearnerDemotesOnRegression(t *testing.T) {
	act := newMemActuator()
	cfg := testLearnerConfig()
	cfg.DemoteMargin = 0.5
	l, err := New(cfg, act)
	if err != nil {
		t.Fatal(err)
	}
	cand := driveToShadow(t, l, act)
	for i := 0; i < 4; i++ {
		l.Offer(shadowEpoch(cand, true, false))
	}
	step(t, l)
	if act.active != cand {
		t.Fatalf("promotion did not land; active %q", act.active)
	}

	// The promoted candidate serves far above the best-measured latency at
	// its operating points (feedOutcomes measured ~100-120µs).
	for i := 0; i < 4; i++ {
		l.Offer(servedEpoch(cand, i%4, sim.Millisecond))
	}
	step(t, l)
	st := l.Status()
	if st.Demotions != 1 || st.State != StateIdle {
		t.Fatalf("after regression: demotions %d, state %q, want 1/idle", st.Demotions, st.State)
	}
	if act.active != "v001" {
		t.Errorf("active = %q after demotion, want last-good v001", act.active)
	}
	if st.LastGood != "v001" {
		t.Errorf("last-good = %q after demotion, want v001", st.LastGood)
	}
}

// TestLearnerDiscardsOnShadowErrors: one shadow error kills the candidate
// immediately and clears the shadow.
func TestLearnerDiscardsOnShadowErrors(t *testing.T) {
	act := newMemActuator()
	l, err := New(testLearnerConfig(), act)
	if err != nil {
		t.Fatal(err)
	}
	cand := driveToShadow(t, l, act)
	l.Offer(shadowEpoch(cand, false, true))
	step(t, l)
	st := l.Status()
	if st.Discards != 1 || st.State != StateIdle || st.Candidate != "" {
		t.Fatalf("after shadow error: discards %d, state %q, candidate %q", st.Discards, st.State, st.Candidate)
	}
	if act.shadow != "" {
		t.Errorf("shadow %q still installed after discard", act.shadow)
	}
	if len(act.promoted) != 0 {
		t.Errorf("discarded candidate was promoted: %v", act.promoted)
	}
}

// TestLearnerDiscardsOnLowAgreement: a diverging candidate fails the
// agreement threshold and is discarded, never promoted.
func TestLearnerDiscardsOnLowAgreement(t *testing.T) {
	act := newMemActuator()
	cfg := testLearnerConfig()
	cfg.AgreeMin = 0.75
	l, err := New(cfg, act)
	if err != nil {
		t.Fatal(err)
	}
	cand := driveToShadow(t, l, act)
	for i := 0; i < 4; i++ {
		l.Offer(shadowEpoch(cand, i == 0, false)) // 1/4 agreement
	}
	step(t, l)
	st := l.Status()
	if st.Discards != 1 || st.State != StateIdle || len(act.promoted) != 0 {
		t.Fatalf("low agreement: discards %d, state %q, promoted %v", st.Discards, st.State, act.promoted)
	}
}

// TestLearnerRetrainsAgainAfterDiscard: a discard returns to idle with the
// sample counter rolling, so the next retrain fires once RetrainEvery fresh
// outcomes arrive and versions keep advancing.
func TestLearnerRetrainsAgainAfterDiscard(t *testing.T) {
	act := newMemActuator()
	l, err := New(testLearnerConfig(), act)
	if err != nil {
		t.Fatal(err)
	}
	cand := driveToShadow(t, l, act)
	l.Offer(shadowEpoch(cand, false, true))
	step(t, l)

	feedOutcomes(l, 24)
	step(t, l)
	st := l.Status()
	if st.Retrains != 2 || st.State != StateShadowing {
		t.Fatalf("second retrain: retrains %d, state %q", st.Retrains, st.State)
	}
	if st.Candidate == cand || st.Candidate == "" {
		t.Errorf("second candidate %q did not advance past %q", st.Candidate, cand)
	}
}

// TestLearnerSurvivesActuatorFailure: a failing promotion parks the machine
// back in idle with an error instead of wedging, and the shadow is cleared.
func TestLearnerSurvivesActuatorFailure(t *testing.T) {
	act := newMemActuator()
	l, err := New(testLearnerConfig(), act)
	if err != nil {
		t.Fatal(err)
	}
	cand := driveToShadow(t, l, act)
	for i := 0; i < 4; i++ {
		l.Offer(shadowEpoch(cand, true, false))
	}
	act.failWith = errTest
	if err := l.Step(time.Unix(0, 0).UTC()); err == nil {
		t.Fatal("failed promotion reported no error")
	}
	st := l.Status()
	if st.State != StateIdle || st.Candidate != "" {
		t.Fatalf("after failed promotion: state %q, candidate %q, want idle and none", st.State, st.Candidate)
	}
	if act.shadow != "" {
		t.Errorf("shadow %q left installed after failed promotion", act.shadow)
	}
}

var errTest = &testError{}

type testError struct{}

func (*testError) Error() string { return "induced actuator failure" }
