package learn

import (
	"bytes"
	"testing"
	"time"

	"ssdkeeper/internal/alloc"
	"ssdkeeper/internal/features"
	"ssdkeeper/internal/nn"
	"ssdkeeper/internal/policy"
	"ssdkeeper/internal/sim"
)

func testStrategies() []alloc.Strategy {
	return []alloc.Strategy{
		{Kind: alloc.Shared},
		{Kind: alloc.Isolated},
		{Kind: alloc.TwoGroup, WriteChannels: 6},
	}
}

// outcomeSample builds a deterministic outcome-bearing sample: operating
// point varies with point, the applied strategy is strat, and the epoch
// realized mean latency lat over 4 completions.
func outcomeSample(point, strat int, lat sim.Time) Sample {
	v := features.Vector{Intensity: point % features.Levels}
	v.ReadChar[point%features.MaxTenants] = true
	v.Prop[point%features.MaxTenants] = 1
	return Sample{
		At:            sim.Time(point) * 10 * sim.Millisecond,
		Epoch:         10 * sim.Millisecond,
		Vector:        v,
		Strategy:      testStrategies()[strat],
		StrategyIndex: strat,
		PolicyVersion: "v001",
		ShadowIndex:   -1,
		Completed:     4,
		LatencySum:    4 * lat,
	}
}

func TestSampleOutcomeHelpers(t *testing.T) {
	s := outcomeSample(1, 0, 250*sim.Microsecond)
	if got := s.MeanLatency(); got != 250*sim.Microsecond {
		t.Errorf("MeanLatency = %v, want 250µs", got)
	}
	if got := s.Throughput(); got != 400 {
		t.Errorf("Throughput = %v, want 400 req/s", got)
	}
	if !s.HasOutcome() {
		t.Error("sample with completions reports no outcome")
	}
	s.Completed, s.LatencySum = 0, 0
	if s.HasOutcome() || s.MeanLatency() != 0 {
		t.Error("empty epoch reports an outcome")
	}
}

// TestVectorKeyQuantization: nearby proportions collapse onto one operating
// point; distinct intensities, read characteristics, and coarse proportions
// do not.
func TestVectorKeyQuantization(t *testing.T) {
	base := features.Vector{Intensity: 7, Prop: [4]float64{0.5, 0.5, 0, 0}}
	near := base
	near.Prop[0], near.Prop[1] = 0.52, 0.51 // still rounds to 4/7 each
	if VectorKey(base) != VectorKey(near) {
		t.Error("nearby proportions map to different keys")
	}
	for _, mut := range []func(*features.Vector){
		func(v *features.Vector) { v.Intensity = 8 },
		func(v *features.Vector) { v.ReadChar[2] = true },
		func(v *features.Vector) { v.Prop[0], v.Prop[1] = 1, 0 },
	} {
		v := base
		mut(&v)
		if VectorKey(v) == VectorKey(base) {
			t.Errorf("mutation %+v did not change the key", v)
		}
	}
}

func TestLogSinceAndEviction(t *testing.T) {
	l := NewLog(4)
	for i := 0; i < 6; i++ {
		l.Offer(outcomeSample(i, 0, sim.Millisecond))
	}
	if l.Len() != 4 {
		t.Fatalf("Len = %d, want 4 after eviction", l.Len())
	}
	// Sequences 0 and 1 fell off; a follower asking from 0 sees the gap.
	samples, first, next := l.Since(0, 0)
	if first != 2 || next != 6 || len(samples) != 4 {
		t.Fatalf("Since(0) = %d samples [%d, %d), want 4 [2, 6)", len(samples), first, next)
	}
	if samples[0].At != outcomeSample(2, 0, 0).At {
		t.Errorf("oldest retained sample is %v, want epoch 2's", samples[0].At)
	}
	// Paged read resumes exactly where the previous page ended.
	page1, _, n1 := l.Since(2, 3)
	page2, _, n2 := l.Since(n1, 3)
	if len(page1) != 3 || len(page2) != 1 || n2 != 6 {
		t.Errorf("paging: %d then %d ending %d, want 3 then 1 ending 6", len(page1), len(page2), n2)
	}
	// A caught-up follower polls past the end and gets nothing.
	if samples, _, next := l.Since(6, 0); len(samples) != 0 || next != 6 {
		t.Errorf("caught-up poll returned %d samples, next %d", len(samples), next)
	}
}

// TestReservoirDeterminism pins the reproducibility contract: the same stream
// through the same seed yields the same buffer, slot for slot.
func TestReservoirDeterminism(t *testing.T) {
	fill := func(seed int64) *Reservoir {
		r := NewReservoir(16, seed)
		for i := 0; i < 200; i++ {
			r.Add(outcomeSample(i, i%3, sim.Time(i)*sim.Microsecond))
		}
		return r
	}
	a, b := fill(7), fill(7)
	if a.Seen() != 200 || a.Len() != 16 {
		t.Fatalf("reservoir saw %d holds %d, want 200/16", a.Seen(), a.Len())
	}
	// Each stream position has a unique At, so At identifies the retained set.
	for i := range a.Samples() {
		if a.Samples()[i].At != b.Samples()[i].At {
			t.Fatalf("slot %d differs across identical runs", i)
		}
	}
	c := fill(8)
	same := true
	for i := range a.Samples() {
		if a.Samples()[i].At != c.Samples()[i].At {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical reservoirs")
	}
}

func TestOutcomeIndexBest(t *testing.T) {
	idx := NewOutcomeIndex(3)
	// Strategy 0 measures slow, strategy 2 fast, at the same operating point.
	for i := 0; i < 3; i++ {
		idx.Add(outcomeSample(1, 0, sim.Millisecond))
		idx.Add(outcomeSample(1, 2, 100*sim.Microsecond))
	}
	best, est, ok := idx.Best(VectorKey(outcomeSample(1, 0, 0).Vector))
	if !ok || best != 2 || est != float64(100*sim.Microsecond) {
		t.Errorf("Best = (%d, %v, %v), want (2, 100µs, true)", best, est, ok)
	}
	if _, _, ok := idx.Best(VectorKey(outcomeSample(2, 0, 0).Vector)); ok {
		t.Error("unmeasured operating point reports a best strategy")
	}
	// Outcome-free and out-of-space samples are ignored.
	empty := outcomeSample(3, 0, 0)
	empty.Completed = 0
	idx.Add(empty)
	oob := outcomeSample(3, 0, sim.Millisecond)
	oob.StrategyIndex = 9
	idx.Add(oob)
	if idx.Points() != 1 {
		t.Errorf("index holds %d points, want 1", idx.Points())
	}
}

// TestRetrainDeterministic pins the satellite acceptance: the same buffer and
// index under the same seed produce a bit-identical checkpoint.
func TestRetrainDeterministic(t *testing.T) {
	strategies := testStrategies()
	build := func() []byte {
		t.Helper()
		idx := NewOutcomeIndex(len(strategies))
		var buf []Sample
		for i := 0; i < 60; i++ {
			s := outcomeSample(i%5, i%3, sim.Time(100+10*(i%3))*sim.Microsecond)
			idx.Add(s)
			buf = append(buf, s)
		}
		net, meta, err := Retrain(buf, idx, TrainerConfig{Classes: len(strategies), Seed: 3},
			time.Date(2026, 8, 8, 0, 0, 0, 0, time.UTC), "v001")
		if err != nil {
			t.Fatal(err)
		}
		if meta.Source != policy.SourceOnline || meta.Parent != "v001" {
			t.Fatalf("meta provenance = %q/%q, want online/v001", meta.Source, meta.Parent)
		}
		var w bytes.Buffer
		if err := policy.SaveCheckpointPrecision(&w, net, meta, 8, strategies, nn.Float64); err != nil {
			t.Fatal(err)
		}
		return w.Bytes()
	}
	if !bytes.Equal(build(), build()) {
		t.Error("identical buffer, index, and seed produced different checkpoint bytes")
	}
}
