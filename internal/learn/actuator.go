package learn

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"

	"ssdkeeper/internal/nn"
	"ssdkeeper/internal/policy"
)

// Actuator is how the learner acts on the serving system: checkpoint a
// candidate, install it as shadow, clear the shadow, promote a version to
// active. The in-daemon learner drives the registry and policy source
// directly; the sidecar drives the same four verbs over the daemon's
// /model/reload endpoint — the state machine cannot tell the difference.
type Actuator interface {
	// SaveCandidate checkpoints the network as the next registry version and
	// returns the version name. protect lists versions the actuator's
	// checkpoint GC must keep beyond the active and shadow.
	SaveCandidate(net *nn.Network, meta policy.Meta, protect []string) (string, error)
	InstallShadow(version string) error
	ClearShadow() error
	// Promote atomically makes version the active policy and returns the
	// version that was active before.
	Promote(version string) (previous string, err error)
}

// RegistryActuator acts directly on the daemon's checkpoint registry and
// policy source — the in-process path behind ssdkeeperd -learn.
type RegistryActuator struct {
	Reg *policy.Registry
	Src *policy.Source
	// Precision forces promoted and shadowed models onto a specific
	// inference kernel (the daemon's -quantize); Float64 serves as stored.
	Precision nn.Precision
	// Keep bounds the registry to this many checkpoints after each save
	// (0: no GC).
	Keep int
}

// SaveCandidate writes the next version and garbage-collects old
// checkpoints, never touching the active, shadow, or protected versions.
func (a *RegistryActuator) SaveCandidate(net *nn.Network, meta policy.Meta, protect []string) (string, error) {
	version, err := a.Reg.NextVersion()
	if err != nil {
		return "", err
	}
	if err := a.Reg.SaveCheckpoint(version, net, meta, a.Precision); err != nil {
		return "", err
	}
	if a.Keep > 0 {
		keep := append([]string{version, a.Src.Active().Version()}, protect...)
		if sh := a.Src.Shadow(); sh != nil {
			keep = append(keep, sh.Version())
		}
		if _, err := a.Reg.GC(a.Keep, keep...); err != nil {
			return "", fmt.Errorf("learn: checkpoint gc: %w", err)
		}
	}
	return version, nil
}

func (a *RegistryActuator) load(version string) (*policy.Model, error) {
	m, err := a.Reg.Load(version)
	if err != nil {
		return nil, err
	}
	if a.Precision != nn.Float64 {
		return m.WithPrecision(a.Precision)
	}
	return m, nil
}

// InstallShadow publishes the version as the shadow candidate.
func (a *RegistryActuator) InstallShadow(version string) error {
	m, err := a.load(version)
	if err != nil {
		return err
	}
	a.Src.SetShadow(m)
	return nil
}

// ClearShadow removes any shadow candidate.
func (a *RegistryActuator) ClearShadow() error {
	a.Src.SetShadow(nil)
	return nil
}

// Promote atomically activates the version.
func (a *RegistryActuator) Promote(version string) (string, error) {
	m, err := a.load(version)
	if err != nil {
		return "", err
	}
	prev, err := a.Src.SetActive(m)
	if err != nil {
		return "", err
	}
	return prev.Version(), nil
}

// HTTPActuator drives a remote daemon's /model/reload endpoint — the sidecar
// path behind keeper-train -follow. Checkpoints are written into the model
// directory the trainer shares with the daemon (the registry is the
// rendezvous); shadow installs and promotions go over HTTP so the daemon's
// own reload path, with all its verification, performs the swap.
type HTTPActuator struct {
	Reg    *policy.Registry // shared -model-dir
	Base   string           // daemon base URL, e.g. http://127.0.0.1:8080
	Client *http.Client     // nil: a 10s-timeout default
	Keep   int              // registry GC bound (0: no GC)
}

func (a *HTTPActuator) client() *http.Client {
	if a.Client != nil {
		return a.Client
	}
	return &http.Client{Timeout: 10 * time.Second}
}

// SaveCandidate writes the next version into the shared registry. GC only
// protects versions this trainer knows about (the daemon may have others in
// flight), so the keep-count should stay generous in sidecar deployments.
func (a *HTTPActuator) SaveCandidate(net *nn.Network, meta policy.Meta, protect []string) (string, error) {
	version, err := a.Reg.NextVersion()
	if err != nil {
		return "", err
	}
	if err := a.Reg.SaveCheckpoint(version, net, meta, nn.Float64); err != nil {
		return "", err
	}
	if a.Keep > 0 {
		if _, err := a.Reg.GC(a.Keep, append([]string{version}, protect...)...); err != nil {
			return "", fmt.Errorf("learn: checkpoint gc: %w", err)
		}
	}
	return version, nil
}

// reload POSTs one /model/reload request and returns the previous version.
func (a *HTTPActuator) reload(role, version string) (string, error) {
	u := fmt.Sprintf("%s/model/reload?role=%s&version=%s",
		a.Base, url.QueryEscape(role), url.QueryEscape(version))
	resp, err := a.client().Post(u, "", nil)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("learn: reload %s %s: %s: %s", role, version, resp.Status, body)
	}
	var st struct {
		Previous string `json:"previous"`
	}
	if err := json.Unmarshal(body, &st); err != nil {
		return "", fmt.Errorf("learn: reload %s %s: decode response: %w", role, version, err)
	}
	return st.Previous, nil
}

// InstallShadow asks the daemon to shadow the version.
func (a *HTTPActuator) InstallShadow(version string) error {
	_, err := a.reload("shadow", version)
	return err
}

// ClearShadow asks the daemon to drop its shadow candidate.
func (a *HTTPActuator) ClearShadow() error {
	_, err := a.reload("shadow", "none")
	return err
}

// Promote asks the daemon to activate the version.
func (a *HTTPActuator) Promote(version string) (string, error) {
	return a.reload("active", version)
}

// exportPage is the /learn/samples response shape (mirrored in
// internal/serve's handler).
type exportPage struct {
	Next    uint64   `json:"next"`
	Samples []Sample `json:"samples"`
}

// FollowLoop polls a daemon's /learn/samples export, feeds the learner, and
// steps it — the sidecar trainer's main loop. It returns when ctx is done;
// transient poll errors are logged and retried at the next interval.
func FollowLoop(ctx context.Context, base string, lrn *Learner, interval time.Duration, logf func(format string, args ...any)) error {
	if interval <= 0 {
		interval = time.Second
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	client := &http.Client{Timeout: 10 * time.Second}
	var next uint64
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
		page, err := fetchSamples(ctx, client, base, next)
		if err != nil {
			logf("learn: poll %s: %v", base, err)
			continue
		}
		for _, s := range page.Samples {
			lrn.Offer(s)
		}
		next = page.Next
		if err := lrn.Step(time.Now()); err != nil {
			logf("%v", err)
		}
	}
}

func fetchSamples(ctx context.Context, client *http.Client, base string, since uint64) (exportPage, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		fmt.Sprintf("%s/learn/samples?since=%d", base, since), nil)
	if err != nil {
		return exportPage{}, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return exportPage{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<12))
		return exportPage{}, fmt.Errorf("%s: %s", resp.Status, body)
	}
	var page exportPage
	if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
		return exportPage{}, err
	}
	return page, nil
}
