package learn

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Learner is the promotion controller: it ingests the outcome feed, retrains
// candidates from the replay buffer, evaluates them in shadow, and drives the
// Actuator through the promotion state machine:
//
//	idle ──retrain──▶ shadowing ──gate clears──▶ watching ──no regression──▶ idle
//	  ▲                   │                          │          (candidate
//	  │                   │ gate fails / errs        │           becomes
//	  └────discard────────┘                          │           last-good)
//	  ▲                                              │
//	  └──────────demote to last-good─────────────────┘
//
// Offer is the only concurrent entry point (every shard's sink feeds it);
// everything else runs on whichever single goroutine calls Step — the
// daemon's learner ticker, or the sidecar's follow loop. Status is published
// through an atomic pointer so the metrics renderer reads it lock-free.
type Learner struct {
	cfg Config
	act Actuator

	mu    sync.Mutex
	inbox []Sample

	res    *Reservoir
	idx    *OutcomeIndex
	recent []Sample // rolling window of outcome samples, for regret

	state        string
	candidate    string // version under shadow evaluation or post-promotion watch
	lastGood     string // last version that survived a watch window
	parent       string // active version most recently seen in the feed
	candAgree    uint64
	candDiverge  uint64
	candErrs     uint64
	sinceRetrain int     // outcome samples ingested since the last retrain
	baseRegret   float64 // serving regret at promotion time, the demotion baseline
	watchSeen    int     // candidate-served outcome samples since promotion

	samples    atomic.Uint64
	retrains   uint64
	promotions uint64
	demotions  uint64
	discards   uint64

	status atomic.Pointer[Status]
}

// Learner states, as surfaced in Status and /metrics.
const (
	StateIdle      = "idle"      // accumulating samples, no candidate
	StateShadowing = "shadowing" // candidate installed as shadow, gate pending
	StateWatching  = "watching"  // candidate promoted, demotion watch running
)

// Config parameterizes a Learner. Zero values take the documented defaults;
// Classes is required.
type Config struct {
	Classes   int   // strategy-space size (required)
	BufferCap int   // replay-buffer capacity (default 512)
	Seed      int64 // seeds the reservoir and every retrain

	MinSamples   int // outcome samples before the first retrain (default 64)
	RetrainEvery int // new outcome samples between retrains (default 64)

	Hidden     int // trainer: hidden width (default 32)
	Iterations int // trainer: epochs (default 80)
	Batch      int // trainer: minibatch (default 16)

	MinEpochs     int     // shadow decisions before the gate rules (default 8)
	AgreeMin      float64 // min shadow agreement ratio to promote (default 0)
	RegretTol     float64 // candidate may estimate at most this much worse, relative (default 0.05)
	MinComparable int     // outcome samples the regret estimate must rest on (default 0)

	DemoteWindow int     // candidate-served outcome samples before the watch rules (default 16)
	DemoteMargin float64 // relative regret growth that triggers demotion (default 0.10)

	RecentWindow int // rolling outcome window for regret estimates (default 128)

	// Logf, when set, receives one line per state transition.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.BufferCap <= 0 {
		c.BufferCap = 512
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 64
	}
	if c.RetrainEvery <= 0 {
		c.RetrainEvery = 64
	}
	if c.MinEpochs <= 0 {
		c.MinEpochs = 8
	}
	if c.RegretTol == 0 {
		c.RegretTol = 0.05
	}
	if c.DemoteWindow <= 0 {
		c.DemoteWindow = 16
	}
	if c.DemoteMargin == 0 {
		c.DemoteMargin = 0.10
	}
	if c.RecentWindow <= 0 {
		c.RecentWindow = 128
	}
	return c
}

// Status is one lock-free snapshot of the learner for the metrics renderer.
type Status struct {
	Samples  uint64 // samples offered (including outcome-free epochs)
	Buffered int    // replay-buffer occupancy

	Retrains   uint64
	Promotions uint64
	Demotions  uint64
	Discards   uint64

	State     string
	Candidate string // version in shadow or under watch ("" in idle)
	LastGood  string

	CandidateAgree   uint64
	CandidateDiverge uint64
	CandidateErrs    uint64

	Regret float64 // rolling relative regret of the serving policy
}

// New returns a Learner driving the given actuator.
func New(cfg Config, act Actuator) (*Learner, error) {
	cfg = cfg.withDefaults()
	if cfg.Classes <= 0 {
		return nil, fmt.Errorf("learn: learner needs the strategy-space size")
	}
	if act == nil {
		return nil, fmt.Errorf("learn: learner needs an actuator")
	}
	l := &Learner{
		cfg:   cfg,
		act:   act,
		res:   NewReservoir(cfg.BufferCap, cfg.Seed),
		idx:   NewOutcomeIndex(cfg.Classes),
		state: StateIdle,
	}
	l.publish()
	return l, nil
}

// Offer enqueues one sample. Safe for concurrent use and cheap: an append
// under a short mutex — shard goroutines call it from their epoch loop.
func (l *Learner) Offer(s Sample) {
	l.samples.Add(1)
	l.mu.Lock()
	l.inbox = append(l.inbox, s)
	l.mu.Unlock()
}

// Status returns the latest published snapshot, lock-free.
func (l *Learner) Status() Status { return *l.status.Load() }

// Step ingests everything offered since the last call and advances the state
// machine: retrain when due, rule on the promotion gate, rule on the
// demotion watch. Single-goroutine; now stamps any checkpoint written.
// Actuator failures are returned after the state is parked back in idle, so
// a broken registry never wedges the machine.
func (l *Learner) Step(now time.Time) error {
	l.mu.Lock()
	batch := l.inbox
	l.inbox = nil
	l.mu.Unlock()

	for _, s := range batch {
		l.ingest(s)
	}
	err := l.advance(now)
	l.publish()
	return err
}

// ingest folds one sample into the buffer, the outcome index, the rolling
// window, and the candidate's shadow tallies.
func (l *Learner) ingest(s Sample) {
	if s.PolicyVersion != "" {
		l.parent = s.PolicyVersion
	}
	if l.state == StateShadowing && l.candidate != "" && s.ShadowVersion == l.candidate {
		switch {
		case s.ShadowErred:
			l.candErrs++
		case s.ShadowAgreed:
			l.candAgree++
		default:
			l.candDiverge++
		}
	}
	if !s.HasOutcome() {
		return
	}
	l.res.Add(s)
	l.idx.Add(s)
	l.sinceRetrain++
	if l.state == StateWatching && s.PolicyVersion == l.candidate && !s.Explore {
		l.watchSeen++
	}
	l.recent = append(l.recent, s)
	if over := len(l.recent) - l.cfg.RecentWindow; over > 0 {
		l.recent = l.recent[over:]
	}
}

// advance runs the due state transition, at most one per Step.
func (l *Learner) advance(now time.Time) error {
	switch l.state {
	case StateIdle:
		if l.res.Len() >= l.cfg.MinSamples && l.sinceRetrain >= l.cfg.RetrainEvery {
			return l.retrain(now)
		}
	case StateShadowing:
		return l.ruleGate()
	case StateWatching:
		return l.ruleWatch()
	}
	return nil
}

// retrain fits a candidate on the buffer, checkpoints it, and installs it as
// shadow.
func (l *Learner) retrain(now time.Time) error {
	net, meta, err := Retrain(l.res.Samples(), l.idx, TrainerConfig{
		Classes:    l.cfg.Classes,
		Hidden:     l.cfg.Hidden,
		Iterations: l.cfg.Iterations,
		Batch:      l.cfg.Batch,
		Seed:       l.cfg.Seed,
	}, now, l.parent)
	if err != nil {
		return fmt.Errorf("learn: retrain: %w", err)
	}
	l.retrains++
	l.sinceRetrain = 0
	version, err := l.act.SaveCandidate(net, meta, l.protected())
	if err != nil {
		return fmt.Errorf("learn: save candidate: %w", err)
	}
	if err := l.act.InstallShadow(version); err != nil {
		return fmt.Errorf("learn: install shadow %s: %w", version, err)
	}
	l.candidate = version
	l.candAgree, l.candDiverge, l.candErrs = 0, 0, 0
	l.state = StateShadowing
	l.logf("learn: candidate %s (trained on %d samples, parent %s) installed as shadow",
		version, meta.Samples, l.parent)
	return nil
}

// ruleGate decides the shadowing candidate's fate once enough evidence has
// accumulated: any shadow error discards immediately; otherwise, after
// MinEpochs decisions and MinComparable comparable outcomes, the candidate
// promotes when its agreement ratio and estimated regret clear the
// thresholds, and is discarded when they do not. Before that, hold.
func (l *Learner) ruleGate() error {
	if l.candErrs > 0 {
		return l.discard("shadow errors")
	}
	epochs := l.candAgree + l.candDiverge
	if epochs < uint64(l.cfg.MinEpochs) {
		return nil // hold: not enough shadow decisions yet
	}
	candRegret, actRegret, comparable := l.gateRegret()
	if comparable < l.cfg.MinComparable {
		return nil // hold: not enough comparable outcomes yet
	}
	agreeRatio := float64(l.candAgree) / float64(epochs)
	if agreeRatio < l.cfg.AgreeMin {
		return l.discard(fmt.Sprintf("agreement %.2f below %.2f", agreeRatio, l.cfg.AgreeMin))
	}
	if candRegret > actRegret+l.cfg.RegretTol {
		return l.discard(fmt.Sprintf("estimated regret %.3f vs active %.3f", candRegret, actRegret))
	}
	return l.promote()
}

// promote flips the candidate to active and opens the demotion watch.
func (l *Learner) promote() error {
	prev, err := l.act.Promote(l.candidate)
	if err != nil {
		cand := l.candidate
		l.clearCandidate()
		if cerr := l.act.ClearShadow(); cerr != nil {
			l.logf("learn: clear shadow after failed promotion of %s: %v", cand, cerr)
		}
		return fmt.Errorf("learn: promote %s: %w", cand, err)
	}
	if err := l.act.ClearShadow(); err != nil {
		l.logf("learn: clear shadow after promoting %s: %v", l.candidate, err)
	}
	if prev != "" {
		l.lastGood = prev
	}
	l.promotions++
	l.baseRegret = l.servingRegret()
	l.watchSeen = 0
	l.state = StateWatching
	l.logf("learn: promoted %s (was %s, baseline regret %.3f); watching %d outcomes",
		l.candidate, prev, l.baseRegret, l.cfg.DemoteWindow)
	return nil
}

// ruleWatch confirms or demotes a freshly promoted candidate once it has
// served DemoteWindow outcome epochs: realized regret above the promotion
// baseline plus the margin rolls the active policy back to last-good.
func (l *Learner) ruleWatch() error {
	if l.watchSeen < l.cfg.DemoteWindow {
		return nil // hold: candidate has not served enough epochs yet
	}
	regret := l.candidateRegret()
	if regret > l.baseRegret+l.cfg.DemoteMargin && l.lastGood != "" {
		cand := l.candidate
		prev, err := l.act.Promote(l.lastGood)
		if err != nil {
			l.clearCandidate()
			return fmt.Errorf("learn: demote %s to %s: %w", cand, l.lastGood, err)
		}
		l.demotions++
		l.logf("learn: demoted %s (regret %.3f vs baseline %.3f): %s active again",
			prev, regret, l.baseRegret, l.lastGood)
		l.clearCandidate()
		return nil
	}
	l.lastGood = l.candidate
	l.logf("learn: %s confirmed (regret %.3f, baseline %.3f)", l.candidate, regret, l.baseRegret)
	l.clearCandidate()
	return nil
}

// discard clears the shadow and returns to idle.
func (l *Learner) discard(why string) error {
	cand := l.candidate
	l.discards++
	l.clearCandidate()
	if err := l.act.ClearShadow(); err != nil {
		return fmt.Errorf("learn: clear discarded shadow %s: %w", cand, err)
	}
	l.logf("learn: discarded %s: %s", cand, why)
	return nil
}

func (l *Learner) clearCandidate() {
	l.candidate = ""
	l.candAgree, l.candDiverge, l.candErrs = 0, 0, 0
	l.watchSeen = 0
	l.state = StateIdle
}

// protected lists the versions the actuator's checkpoint GC must never
// delete alongside whatever it protects itself (active and shadow).
func (l *Learner) protected() []string {
	var keep []string
	if l.lastGood != "" {
		keep = append(keep, l.lastGood)
	}
	if l.candidate != "" {
		keep = append(keep, l.candidate)
	}
	return keep
}

// gateRegret estimates, over the rolling window, how much worse the shadow
// candidate's decisions would have been than the applied ones — per the
// outcome index, relative to the best-measured strategy at each operating
// point. Only epochs where both the applied and the shadow strategy have
// measurements are comparable. Exploration epochs are excluded: their
// applied strategy is deliberate noise, not the active policy's choice.
func (l *Learner) gateRegret() (cand, act float64, comparable int) {
	var candSum, actSum float64
	for _, s := range l.recent {
		if s.Explore || s.ShadowVersion != l.candidate || s.ShadowIndex < 0 {
			continue
		}
		k := VectorKey(s.Vector)
		_, best, ok := l.idx.Best(k)
		if !ok || best <= 0 {
			continue
		}
		candEst, n := l.idx.Est(k, s.ShadowIndex)
		if n == 0 {
			continue
		}
		actEst, n := l.idx.Est(k, s.StrategyIndex)
		if n == 0 {
			continue
		}
		candSum += (candEst - best) / best
		actSum += (actEst - best) / best
		comparable++
	}
	if comparable == 0 {
		return 0, 0, 0
	}
	return candSum / float64(comparable), actSum / float64(comparable), comparable
}

// servingRegret is the rolling realized regret of whatever policy served the
// recent window: each epoch's measured latency against the best-measured
// strategy at its operating point.
func (l *Learner) servingRegret() float64 {
	return l.regretOver(func(s Sample) bool { return !s.Explore })
}

// candidateRegret is servingRegret restricted to epochs the promoted
// candidate decided.
func (l *Learner) candidateRegret() float64 {
	return l.regretOver(func(s Sample) bool { return !s.Explore && s.PolicyVersion == l.candidate })
}

func (l *Learner) regretOver(keep func(Sample) bool) float64 {
	var sum float64
	var n int
	for _, s := range l.recent {
		if !keep(s) {
			continue
		}
		_, best, ok := l.idx.Best(VectorKey(s.Vector))
		if !ok || best <= 0 {
			continue
		}
		sum += (float64(s.MeanLatency()) - best) / best
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// publish refreshes the lock-free status snapshot.
func (l *Learner) publish() {
	st := &Status{
		Samples:          l.samples.Load(),
		Buffered:         l.res.Len(),
		Retrains:         l.retrains,
		Promotions:       l.promotions,
		Demotions:        l.demotions,
		Discards:         l.discards,
		State:            l.state,
		Candidate:        l.candidate,
		LastGood:         l.lastGood,
		CandidateAgree:   l.candAgree,
		CandidateDiverge: l.candDiverge,
		CandidateErrs:    l.candErrs,
		Regret:           l.servingRegret(),
	}
	l.status.Store(st)
}

func (l *Learner) logf(format string, args ...any) {
	if l.cfg.Logf != nil {
		l.cfg.Logf(format, args...)
	}
}
