package learn

import "math/rand"

// Reservoir is a bounded replay buffer with classic reservoir sampling: after
// the first capacity samples fill it, each later sample replaces a uniformly
// random slot with probability capacity/seen. Every sample ever offered has
// equal probability of being retained, so the trainer sees an unbiased
// snapshot of the whole stream, not just the most recent burst — and because
// the PRNG is seeded, the same stream always yields the same buffer, which is
// what makes retraining reproducible (same stream + same seed ⇒ bit-identical
// checkpoint).
type Reservoir struct {
	rng  *rand.Rand
	buf  []Sample
	cap  int
	seen uint64
}

// NewReservoir returns an empty reservoir with the given capacity and seed.
func NewReservoir(capacity int, seed int64) *Reservoir {
	if capacity <= 0 {
		capacity = 512
	}
	return &Reservoir{
		rng: rand.New(rand.NewSource(seed)),
		buf: make([]Sample, 0, capacity),
		cap: capacity,
	}
}

// Add offers one sample to the reservoir. Not safe for concurrent use: the
// learner ingests from its inbox on a single goroutine.
func (r *Reservoir) Add(s Sample) {
	r.seen++
	if len(r.buf) < r.cap {
		r.buf = append(r.buf, s)
		return
	}
	if j := r.rng.Int63n(int64(r.seen)); j < int64(r.cap) {
		r.buf[j] = s
	}
}

// Len returns the number of buffered samples.
func (r *Reservoir) Len() int { return len(r.buf) }

// Seen returns the total number of samples offered.
func (r *Reservoir) Seen() uint64 { return r.seen }

// Samples returns the buffered samples in slot order. The returned slice
// aliases the reservoir; callers must not retain it across Add.
func (r *Reservoir) Samples() []Sample { return r.buf }
