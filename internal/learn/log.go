package learn

import "sync"

// Log is a bounded in-memory sample journal with absolute sequence numbers —
// the backing store of the daemon's /learn/samples export. Shard goroutines
// Offer into it; the sidecar trainer polls Since with the next sequence it
// wants, so a slow or restarted follower resumes from wherever the ring still
// reaches. Old samples fall off the back; a follower that lagged past the
// ring's capacity simply misses them (Since reports the gap via the first
// returned sequence).
type Log struct {
	mu    sync.Mutex
	ring  []Sample
	cap   int
	first uint64 // sequence of ring[0]
	next  uint64 // sequence the next Offer receives
}

// NewLog returns a journal retaining the most recent capacity samples.
func NewLog(capacity int) *Log {
	if capacity <= 0 {
		capacity = 4096
	}
	return &Log{ring: make([]Sample, 0, capacity), cap: capacity}
}

// Offer appends one sample, evicting the oldest when full.
func (l *Log) Offer(s Sample) {
	l.mu.Lock()
	if len(l.ring) == l.cap {
		copy(l.ring, l.ring[1:])
		l.ring[len(l.ring)-1] = s
		l.first++
	} else {
		l.ring = append(l.ring, s)
	}
	l.next++
	l.mu.Unlock()
}

// Since returns up to max samples with sequence >= seq, the sequence of the
// first returned sample (callers detect eviction gaps by comparing it with
// seq), and the sequence to poll from next time. max <= 0 means no bound.
func (l *Log) Since(seq uint64, max int) (samples []Sample, first, next uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if seq < l.first {
		seq = l.first
	}
	if seq > l.next {
		seq = l.next
	}
	at := int(seq - l.first)
	end := len(l.ring)
	if max > 0 && at+max < end {
		end = at + max
	}
	samples = append([]Sample(nil), l.ring[at:end]...)
	return samples, seq, seq + uint64(len(samples))
}

// Len returns the number of samples currently retained.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.ring)
}
