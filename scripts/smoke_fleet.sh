#!/usr/bin/env bash
# smoke_fleet.sh — end-to-end smoke test of the fleet tier.
#
# Topology: three ssdkeeperd nodes on 127.0.0.1:8081-8083 plus one
# keeperfleet router. The node ports are load-bearing: the consistent-hash
# ring is a pure function of the node URLs (pinned by TestRingGoldenURLs),
# which places tenants 0, 1, 3 on :8082, tenant 2 on :8081, and leaves
# :8083 empty — the natural migration target.
#
# The script boots the fleet, drives keeperload through the router, and
# mid-load force-migrates hot tenant 0 from :8082 to :8083. It asserts:
#   - every request is answered (ok + rejected == sent, zero failed; the
#     documented 503 window during a handoff counts as answered),
#   - the router reports the migration completed and the new placement,
#   - the target node replayed the handoff batch and serves tenant 0,
#   - the source node is ready again after the release,
#   - router and nodes all shut down cleanly on SIGTERM.
#
# WIRE=1 runs the same scenario over the persistent framed wire data plane:
# every node gets a -wire-listen (its HTTP port + 1000), the router proxies
# over -wire-nodes and serves wire itself, and keeperload drives -wire
# against the router's wire listener. The migration, loss/duplication, and
# shutdown assertions are identical — the contract holds on both planes.
#
# A second topology then exercises the device-health tier: the node owning
# tenants 0, 1, 3 boots with a fault plan that kills a die mid-load. The
# script asserts the auditor flips that node's /readyz to degraded, the
# router's rebalancer quarantines a tenant off it onto a healthy node, and
# the load generator still loses zero requests.
#
# Usage: scripts/smoke_fleet.sh [router-port]
#        WIRE=1 scripts/smoke_fleet.sh
set -euo pipefail

cd "$(dirname "$0")/.."
NODES=(127.0.0.1:8081 127.0.0.1:8082 127.0.0.1:8083)
RPORT="${1:-8090}"
WIRE="${WIRE:-0}"
ROUTER="http://127.0.0.1:$RPORT"
SRC="http://127.0.0.1:8082"    # owns tenants 0, 1, 3 per the ring golden
DST="http://127.0.0.1:8083"    # starts empty
BIN="$(mktemp -d)"
trap 'jobs -p | xargs -r kill 2>/dev/null; rm -rf "$BIN"' EXIT

echo "building..." >&2
go build -o "$BIN/ssdkeeperd" ./cmd/ssdkeeperd
go build -o "$BIN/keeperfleet" ./cmd/keeperfleet
go build -o "$BIN/keeperload" ./cmd/keeperload

wait_ready() { # wait_ready <base-url> <log>
  for _ in $(seq 1 200); do
    curl -sf "$1/readyz" >/dev/null 2>&1 && return 0
    sleep 0.3
  done
  echo "smoke_fleet.sh: $1 never became ready" >&2
  cat "$2" >&2
  return 1
}

metric() { # metric <base-url> <series-prefix>
  curl -sf "$1/metrics" \
    | awk -v p="$2" 'index($0, p) == 1 && !seen {print $NF; seen = 1}'
}

json_count() { # json_count <key> <file>
  awk -v k="\"$1\":" '$1 == k && !seen {gsub(",", "", $2); print $2; seen = 1}' "$2"
}

fail() {
  echo "smoke_fleet.sh: $1" >&2
  for log in "$BIN"/*.log; do
    echo "--- $log" >&2
    cat "$log" >&2
  done
  exit 1
}

plane="http"
[ "$WIRE" = "1" ] && plane="wire"
echo "booting 3 nodes + router (data plane: $plane)..." >&2
NPIDS=()
NODE_URLS=""
WIRE_NODES=""
for addr in "${NODES[@]}"; do
  port="${addr##*:}"
  wflag=()
  if [ "$WIRE" = "1" ]; then
    wflag=(-wire-listen "127.0.0.1:$((port + 1000))")
    WIRE_NODES="$WIRE_NODES,127.0.0.1:$((port + 1000))"
  fi
  "$BIN/ssdkeeperd" -addr "$addr" -accel 20 -no-keeper \
    ${wflag[@]+"${wflag[@]}"} 2>"$BIN/node-$port.log" &
  NPIDS+=($!)
  NODE_URLS="$NODE_URLS,http://$addr"
done
NODE_URLS="${NODE_URLS#,}"
WIRE_NODES="${WIRE_NODES#,}"
for addr in "${NODES[@]}"; do
  wait_ready "http://$addr" "$BIN/node-${addr##*:}.log"
done

rflag=()
if [ "$WIRE" = "1" ]; then
  rflag=(-wire-nodes "$WIRE_NODES" -wire-listen "127.0.0.1:$((RPORT + 1000))")
fi
"$BIN/keeperfleet" -addr "127.0.0.1:$RPORT" -nodes "$NODE_URLS" \
  ${rflag[@]+"${rflag[@]}"} 2>"$BIN/router.log" &
RPID=$!
wait_ready "$ROUTER" "$BIN/router.log"

# Placement sanity before any migration: the golden topology.
curl -sf "$ROUTER/fleet/status" > "$BIN/status0.json"
grep -q "\"0\":\"$SRC\"" "$BIN/status0.json" \
  || fail "tenant 0 not on $SRC at boot: $(cat "$BIN/status0.json")"
grep -q "$DST" "$BIN/status0.json" || fail "$DST missing from status"

echo "driving load through the router ($plane), migrating tenant 0 mid-flight..." >&2
if [ "$WIRE" = "1" ]; then
  "$BIN/keeperload" -wire -addr "127.0.0.1:$((RPORT + 1000))" -n 3000 -concurrency 32 \
    -write-ratios 0.9,0.1,0.8,0.2 -json > "$BIN/load.json" &
else
  "$BIN/keeperload" -addr "$ROUTER" -n 3000 -concurrency 32 \
    -write-ratios 0.9,0.1,0.8,0.2 -json > "$BIN/load.json" &
fi
LPID=$!
sleep 1

curl -sf -X POST "$ROUTER/fleet/migrate?tenant=0&to=$DST" > "$BIN/migrate.json" \
  || fail "POST /fleet/migrate failed: $(cat "$BIN/migrate.json" 2>/dev/null)"

wait "$LPID" || fail "load generator failed across the migration"
ok=$(json_count ok "$BIN/load.json")
rejected=$(json_count rejected "$BIN/load.json")
failed=$(json_count failed "$BIN/load.json")
[ "$failed" = "0" ] || fail "$failed requests failed outright"
[ $((ok + rejected)) -eq 3000 ] \
  || fail "answered $ok ok + $rejected rejected of 3000 sent"

# The router saw the migration through: counters, placement, info series.
done_migs=$(metric "$ROUTER" 'ssdkeeper_migrations_total{outcome="completed"}')
[ -n "$done_migs" ] && [ "$done_migs" -ge 1 ] \
  || fail "migrations completed counter is '$done_migs'"
aborted=$(metric "$ROUTER" 'ssdkeeper_migrations_total{outcome="aborted"}')
[ "$aborted" = "0" ] || fail "migration aborted counter is '$aborted'"
curl -sf "$ROUTER/fleet/status" > "$BIN/status1.json"
grep -q "\"0\":\"$DST\"" "$BIN/status1.json" \
  || fail "tenant 0 not on $DST after migrate: $(cat "$BIN/status1.json")"
curl -sf "$ROUTER/metrics" | grep 'ssdkeeper_tenant_node{tenant="0"' \
  | grep -q '8083' || fail "tenant_node info series does not show :8083"

# The target replayed the handoff batch and now serves tenant 0 live.
replayed=$(metric "$DST" 'ssdkeeper_replayed_total{tenant="0"}')
[ -n "$replayed" ] && [ "$replayed" -ge 1 ] \
  || fail "target replayed counter is '$replayed'"
echo '{"tenant":0,"op":"read","offset":0,"size":16384}' \
  | curl -sf -X POST --data-binary @- "$ROUTER/io" > "$BIN/post.json" \
  || fail "post-migration /io through router failed"
grep -q '"latency_ns"' "$BIN/post.json" || fail "bad /io reply: $(cat "$BIN/post.json")"
post=$(metric "$DST" 'ssdkeeper_completed_total{tenant="0"')
[ -n "$post" ] && [ "$post" -ge 1 ] \
  || fail "target completed nothing for tenant 0 after the flip"

# The source released the parked tenant and is ready again.
curl -sf "$SRC/readyz" >/dev/null || fail "source not ready after release"

echo "shutting down..." >&2
kill -TERM "$RPID"
wait "$RPID" || fail "router exited non-zero on SIGTERM"
for i in "${!NPIDS[@]}"; do
  kill -TERM "${NPIDS[$i]}"
  wait "${NPIDS[$i]}" || fail "node ${NODES[$i]} exited non-zero on SIGTERM"
  grep -q "drained clean" "$BIN/node-${NODES[$i]##*:}.log" \
    || fail "node ${NODES[$i]}: no clean-drain report in log"
done

echo "smoke_fleet.sh: migration checks passed over $plane ($ok ok, $rejected rejected in the handoff window, $done_migs migration)" >&2

############################################################################
# Health phase: the same golden topology, but the tenant-0 owner (:8082)
# boots with a fault plan. 40 simulated seconds in (2s wall at -accel 20,
# landing mid-load), a die dies and reads start paying retry tails; the
# node's auditor must flip it degraded, the router's rebalancer must
# quarantine a tenant off it, and no request may be lost.
echo "health phase: rebooting the fleet with a failing die on $SRC..." >&2
cat > "$BIN/faults.plan" <<'EOF'
# One die of sixteen dies 40 simulated seconds in; the marginal flash that
# accompanies failing hardware raises the read-retry rate alongside it.
die:ch1:die0@40s
retry:0.2@40s
EOF

NPIDS=()
for addr in "${NODES[@]}"; do
  port="${addr##*:}"
  hflag=()
  if [ "http://$addr" = "$SRC" ]; then
    hflag=(-fault-plan "$BIN/faults.plan" -audit-every 250ms -degraded-score 0.95)
  fi
  "$BIN/ssdkeeperd" -addr "$addr" -accel 20 -no-keeper \
    ${hflag[@]+"${hflag[@]}"} 2>"$BIN/health-node-$port.log" &
  NPIDS+=($!)
done
for addr in "${NODES[@]}"; do
  wait_ready "http://$addr" "$BIN/health-node-${addr##*:}.log"
done

# -hot-factor 100 mutes the hotspot path (the :8082 node owns 3 of 4
# tenants and would always read as hot): the only migration the health
# phase can produce is the quarantine evacuation.
"$BIN/keeperfleet" -addr "127.0.0.1:$RPORT" -nodes "$NODE_URLS" \
  -rebalance -probe-every 300ms -rebalance-every 300ms -hot-factor 100 \
  2>"$BIN/health-router.log" &
RPID=$!
wait_ready "$ROUTER" "$BIN/health-router.log"

echo "driving load through the die failure..." >&2
"$BIN/keeperload" -addr "$ROUTER" -n 30000 -concurrency 32 \
  -write-ratios 0.9,0.1,0.8,0.2 -json > "$BIN/health-load.json" &
LPID=$!

# The auditor notices the dead die and holds the node out of readiness.
degraded=""
for _ in $(seq 1 100); do
  degraded=$(metric "$SRC" 'ssdkeeper_degraded' || true)
  [ "$degraded" = "1" ] && break
  sleep 0.3
done
[ "$degraded" = "1" ] || fail "auditor never flipped $SRC degraded"
if curl -sf "$SRC/readyz" >/dev/null 2>&1; then
  fail "$SRC still ready while degraded"
fi
curl -s "$SRC/readyz" | grep -q "degraded" \
  || fail "$SRC /readyz does not name the degraded state"
die_fails=$(metric "$SRC" 'ssdkeeper_die_failures_total')
[ -n "$die_fails" ] && [ "$die_fails" -ge 1 ] \
  || fail "die failures counter on $SRC is '$die_fails'"

# The rebalancer's quarantine pass evacuates a tenant to a healthy node.
qmigs=""
for _ in $(seq 1 100); do
  qmigs=$(metric "$ROUTER" 'ssdkeeper_migrations_total{outcome="completed"}' || true)
  [ -n "$qmigs" ] && [ "$qmigs" -ge 1 ] && break
  sleep 0.3
done
[ -n "$qmigs" ] && [ "$qmigs" -ge 1 ] || fail "quarantine migration never completed"
grep -q "degraded" "$BIN/health-router.log" \
  || fail "router log has no quarantine (degraded evacuation) line"

wait "$LPID" || fail "load generator failed across the die failure"
ok=$(json_count ok "$BIN/health-load.json")
rejected=$(json_count rejected "$BIN/health-load.json")
failed=$(json_count failed "$BIN/health-load.json")
[ "$failed" = "0" ] || fail "$failed requests failed during the die failure"
[ $((ok + rejected)) -eq 30000 ] \
  || fail "answered $ok ok + $rejected rejected of 30000 sent through the failure"

echo "shutting down the health fleet..." >&2
kill -TERM "$RPID"
wait "$RPID" || fail "router exited non-zero on SIGTERM"
for i in "${!NPIDS[@]}"; do
  kill -TERM "${NPIDS[$i]}"
  wait "${NPIDS[$i]}" || fail "node ${NODES[$i]} exited non-zero on SIGTERM"
  grep -q "drained clean" "$BIN/health-node-${NODES[$i]##*:}.log" \
    || fail "node ${NODES[$i]}: no clean-drain report in log"
done

echo "smoke_fleet.sh: all checks passed over $plane ($ok ok through the die failure, $qmigs quarantine migration)" >&2
