#!/usr/bin/env bash
# smoke_server.sh — end-to-end smoke test of the serving daemon.
#
# Phase 1 (adaptation): start ssdkeeperd with an accelerated clock and a
# short keeper window, push 1k requests through keeperload, and assert that
#   - every request is answered,
#   - at least one online re-allocation epoch is visible in /metrics,
#   - /healthz is healthy under load,
#   - SIGTERM drains cleanly (exit 0, "drained clean" in the log).
#
# Phase 2 (backpressure): restart with a decelerated clock (the device runs
# 50x slower than wall time) and tight queues, overload one tenant with a
# closed-loop worker pool, and assert 429s are produced and counted.
#
# Phase 3 (hot reload): train two versioned checkpoints with keeper-train,
# boot with -model-dir holding only v001, drop v002 in mid-run, POST
# /model/reload while load is in flight, and assert that
#   - the reload response and /metrics both report v002 active,
#   - a shadow candidate installs and clears through the endpoint,
#   - every request submitted across the swap is answered,
#   - SIGTERM still drains cleanly.
#
# Phase 4 (continuous learning): boot -learn with a deliberately weak v001
# (one training iteration) and loose gate thresholds, keep load flowing, and
# assert that the closed loop completes end to end:
#   - epoch samples land in the learner and the /learn/samples export,
#   - a retrain fires and installs a candidate as shadow,
#   - the gate auto-promotes: /metrics flips the active model off v001,
#   - SIGTERM still drains cleanly with requests answered throughout.
#
# Usage: scripts/smoke_server.sh [port]
set -euo pipefail

cd "$(dirname "$0")/.."
PORT="${1:-18098}"
ADDR="127.0.0.1:$PORT"
URL="http://$ADDR"
BIN="$(mktemp -d)"
LOG="$BIN/daemon.log"
# xargs -r: a bare `kill` with no surviving jobs would fail the trap itself.
trap 'jobs -p | xargs -r kill 2>/dev/null; rm -rf "$BIN"' EXIT

echo "building..." >&2
go build -o "$BIN/ssdkeeperd" ./cmd/ssdkeeperd
go build -o "$BIN/keeperload" ./cmd/keeperload
go build -o "$BIN/keeper-train" ./cmd/keeper-train

# Readiness, not liveness: /readyz also covers tenant handoffs, so waiting
# on it keeps this helper honest if a smoke ever starts mid-migration.
wait_ready() {
  for _ in $(seq 1 200); do
    curl -sf "$URL/readyz" >/dev/null 2>&1 && return 0
    sleep 0.3
  done
  echo "smoke_server.sh: daemon never became ready" >&2
  cat "$LOG" >&2
  return 1
}

# Extractors read their whole input: an early `exit`/`head -1` would SIGPIPE
# the producer and trip pipefail.
metric() { # metric <series-prefix> — prints the value of the first matching sample
  curl -sf "$URL/metrics" \
    | awk -v p="$1" 'index($0, p) == 1 && !seen {print $NF; seen = 1}'
}

json_count() { # json_count <key> <file> — first numeric value of "key" in a report
  awk -v k="\"$1\":" '$1 == k && !seen {gsub(",", "", $2); print $2; seen = 1}' "$2"
}

fail() {
  echo "smoke_server.sh: $1" >&2
  cat "$LOG" >&2
  exit 1
}

echo "phase 1: online adaptation under load (accel 20)..." >&2
"$BIN/ssdkeeperd" -addr "$ADDR" -accel 20 -window 50ms -adapt-every 50ms \
  -train-workloads 8 2>"$LOG" &
DPID=$!
wait_ready

"$BIN/keeperload" -addr "$URL" -n 1000 -concurrency 32 \
  -write-ratios 0.9,0.1,0.8,0.2 -json > "$BIN/load1.json"
ok=$(json_count ok "$BIN/load1.json")
[ "$ok" = "1000" ] || fail "phase 1: $ok/1000 requests answered"

switches=$(metric ssdkeeper_keeper_switches_total)
[ -n "$switches" ] && [ "$switches" -ge 1 ] \
  || fail "phase 1: no online re-allocation epoch (switches=$switches)"
completed=$(curl -sf "$URL/metrics" \
  | awk '/^ssdkeeper_completed_total/ {s += $NF} END {print s}')
[ "$completed" -ge 1000 ] || fail "phase 1: completed_total=$completed < 1000"
curl -sf "$URL/healthz" >/dev/null || fail "phase 1: unhealthy under load"

kill -TERM "$DPID"
if ! wait "$DPID"; then
  fail "phase 1: daemon exited non-zero on SIGTERM"
fi
grep -q "drained clean" "$LOG" || fail "phase 1: no clean-drain report in log"
echo "phase 1 ok: $switches keeper switches, clean drain" >&2

echo "phase 2: backpressure under overload (accel 0.02)..." >&2
"$BIN/ssdkeeperd" -addr "$ADDR" -accel 0.02 -no-keeper \
  -queue-len 4 -queue-depth 4 -timeout 30s 2>"$LOG" &
DPID=$!
wait_ready

# One tenant, 32 closed-loop workers against 4+4 slots: must produce 429s.
"$BIN/keeperload" -addr "$URL" -n 200 -concurrency 32 -tenants 1 \
  -json > "$BIN/load2.json" || true
rejected=$(json_count rejected "$BIN/load2.json")
[ -n "$rejected" ] && [ "$rejected" -ge 1 ] \
  || fail "phase 2: overload produced no rejections"
full=$(metric 'ssdkeeper_rejected_total{reason="queue_full"}')
[ -n "$full" ] && [ "$full" -ge 1 ] \
  || fail "phase 2: queue_full counter is $full"

kill -TERM "$DPID"
wait "$DPID" || fail "phase 2: daemon exited non-zero on SIGTERM"
echo "phase 2 ok: $rejected rejected at the client, $full queue-full at the server" >&2

echo "phase 3: live model reload (accel 20, -model-dir)..." >&2
MODELS="$BIN/models"
STAGE="$BIN/stage"
mkdir -p "$MODELS" "$STAGE"
# Two quick checkpoints off one shared dataset; v002 lands mid-run.
"$BIN/keeper-train" -workloads 8 -requests 600 -iterations 40 -batch 16 \
  -hidden 16 -dataset "$BIN/data.jsonl" -out "$MODELS/v001.json" -q
"$BIN/keeper-train" -dataset "$BIN/data.jsonl" -reuse -seed 7 -iterations 40 \
  -batch 16 -hidden 16 -out "$STAGE/v002.json" -q
"$BIN/keeper-train" -inspect "$MODELS/v001.json" >/dev/null \
  || fail "phase 3: keeper-train -inspect rejected its own checkpoint"

"$BIN/ssdkeeperd" -addr "$ADDR" -accel 20 -window 50ms -adapt-every 50ms \
  -model-dir "$MODELS" 2>"$LOG" &
DPID=$!
wait_ready
# `grep -q` straight off curl would SIGPIPE it under pipefail; snapshot first.
scrape() { curl -sf "$URL/metrics" > "$BIN/metrics.txt"; }
scrape
grep -q 'ssdkeeper_model_info{role="active",version="v001"}' "$BIN/metrics.txt" \
  || fail "phase 3: v001 not active at boot"

# Load in flight across the swap.
"$BIN/keeperload" -addr "$URL" -n 1000 -concurrency 32 \
  -write-ratios 0.9,0.1,0.8,0.2 -json > "$BIN/load3.json" &
LPID=$!
sleep 1

cp "$STAGE/v002.json" "$MODELS/v002.json"
reload=$(curl -sf -X POST "$URL/model/reload") \
  || fail "phase 3: POST /model/reload failed"
echo "$reload" | grep -q '"version":"v002"' \
  || fail "phase 3: reload response did not pick v002: $reload"
scrape
grep -q 'ssdkeeper_model_info{role="active",version="v002"}' "$BIN/metrics.txt" \
  || fail "phase 3: /metrics does not show v002 active after reload"

# Shadow install and clear through the same endpoint.
curl -sf -X POST "$URL/model/reload?role=shadow&version=v001" >/dev/null \
  || fail "phase 3: shadow install failed"
scrape
grep -q 'ssdkeeper_model_info{role="shadow",version="v001"}' "$BIN/metrics.txt" \
  || fail "phase 3: shadow candidate not published"
curl -sf -X POST "$URL/model/reload?role=shadow&version=none" >/dev/null \
  || fail "phase 3: shadow clear failed"
scrape
grep -q 'ssdkeeper_shadow_agree_total' "$BIN/metrics.txt" \
  || fail "phase 3: shadow counters missing from /metrics"

wait "$LPID" || fail "phase 3: load generator failed across the reload"
ok=$(json_count ok "$BIN/load3.json")
[ "$ok" = "1000" ] || fail "phase 3: $ok/1000 requests answered across the reload"

kill -TERM "$DPID"
wait "$DPID" || fail "phase 3: daemon exited non-zero on SIGTERM"
grep -q "drained clean" "$LOG" || fail "phase 3: no clean-drain report in log"
echo "phase 3 ok: reload v001 -> v002 under load, $ok/1000 answered, clean drain" >&2

echo "phase 4: continuous learning (-learn, weak v001, auto-promotion)..." >&2
LEARNDIR="$BIN/learn-models"
mkdir -p "$LEARNDIR"
# A one-iteration model: barely trained, so the online retrain has something
# to improve on. The loose gate flags (agree 0, comparable 0) make promotion
# deterministic once the shadow has decided enough epochs; the huge demote
# margin keeps the post-promotion watch from flaking the smoke — demotion is
# covered by unit test.
"$BIN/keeper-train" -dataset "$BIN/data.jsonl" -reuse -iterations 1 \
  -batch 16 -hidden 16 -out "$LEARNDIR/v001.json" -q

"$BIN/ssdkeeperd" -addr "$ADDR" -accel 20 -window 50ms -adapt-every 50ms \
  -model-dir "$LEARNDIR" -learn -learn-interval 200ms \
  -learn-min-samples 24 -learn-retrain-every 16 -learn-min-epochs 6 \
  -learn-explore 0.25 -learn-demote-margin 10 -model-keep 4 2>"$LOG" &
DPID=$!
wait_ready

# Keep epochs firing (SkipIdle means idle windows emit nothing) and poll for
# the closed loop: samples -> retrain -> shadow -> promotion off v001.
promoted=""
answered=0
for _ in $(seq 1 40); do
  "$BIN/keeperload" -addr "$URL" -n 200 -concurrency 16 \
    -write-ratios 0.9,0.1,0.8,0.2 -json > "$BIN/load4.json"
  answered=$((answered + $(json_count ok "$BIN/load4.json")))
  scrape
  if grep -q 'ssdkeeper_model_info{role="active",version="v001"}' "$BIN/metrics.txt"; then
    continue
  fi
  promotions=$(awk '$1 == "ssdkeeper_learn_promotions_total" {print $2}' "$BIN/metrics.txt")
  [ -n "$promotions" ] && [ "$promotions" -ge 1 ] && promoted=yes && break
done
[ "$promoted" = yes ] \
  || fail "phase 4: learner never promoted a retrained candidate off v001"

retrains=$(awk '$1 == "ssdkeeper_learn_retrains_total" {print $2}' "$BIN/metrics.txt")
[ -n "$retrains" ] && [ "$retrains" -ge 1 ] \
  || fail "phase 4: promotion without a recorded retrain (retrains=$retrains)"
samples=$(awk '$1 == "ssdkeeper_learn_samples_total" {print $2}' "$BIN/metrics.txt")
[ -n "$samples" ] && [ "$samples" -ge 1 ] \
  || fail "phase 4: no learner samples counted"
curl -sf "$URL/learn/samples" | grep -q '"next"' \
  || fail "phase 4: /learn/samples export not serving"
[ "$answered" -ge 200 ] || fail "phase 4: only $answered requests answered"

kill -TERM "$DPID"
wait "$DPID" || fail "phase 4: daemon exited non-zero on SIGTERM"
grep -q "drained clean" "$LOG" || fail "phase 4: no clean-drain report in log"
grep -q "promoted" "$LOG" || fail "phase 4: no promotion logged by the learner"
echo "phase 4 ok: $retrains retrain(s), promoted off v001 ($samples samples), clean drain" >&2
echo "smoke_server.sh: all checks passed" >&2
