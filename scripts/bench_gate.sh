#!/usr/bin/env bash
# bench_gate.sh — blocking benchmark-regression gate for CI.
#
# Shared CI runners are noisy, so the gate is built from assertions that
# survive slow hardware:
#
#   1. Same-run ratio: BenchmarkPredict/int8/batch64 must be at least
#      GATE_RATIO (default 2.0) times faster than BenchmarkPredict/
#      float64/call. Both numbers come from the same process on the same
#      machine, so runner speed cancels out. This pins the headline property
#      of the int8 serving path: quantized batched predict beats the
#      per-call float64 baseline.
#   2. Exact allocation counts: the zero-allocation serve path
#      (BenchmarkServeIO decode/fast and render/fast) must report
#      0 allocs/op. Allocation counts are deterministic, not timing.
#   3. Absolute ns/op vs scripts/bench_baseline.json, scaled by
#      BENCH_GATE_FACTOR (default 1.5). This catches large regressions in
#      either kernel while leaving headroom for runner variance; the
#      baseline records the machine it was measured on.
#   4. Wire data plane: the four wire codec benchmarks (encode/parse for
#      request and reply frames) must report 0 allocs/op — the router's
#      proxy fast path is built on them — and BenchmarkProxyTransport/wire
#      must be at least WIRE_RATIO (default 1.0) times faster than
#      BenchmarkProxyTransport/http from the same run, pinning that the
#      persistent framed transport never falls behind the per-request HTTP
#      proxy it replaced.
#   5. Device-health overhead: BenchmarkSimulatorHealthOverhead interleaves
#      no-fault and armed-but-empty-plan simulator runs in GC-isolated
#      pairs and reports their time ratio; the median over HEALTH_COUNT
#      (default 3) repetitions must stay at or below HEALTH_OVERHEAD
#      (default 1.02). This pins the tentpole property that a device with
#      fault support compiled in and armed, but no faults injected, costs
#      at most 2% over the pre-health simulator path.
#
# BENCH_GATE_INJECT=<mult> multiplies the measured int8/batch64 ns/op (demo
# knob: BENCH_GATE_INJECT=2 shows the gate failing on a 2x slowdown without
# editing the kernel).
#
# Usage: scripts/bench_gate.sh   (exit 0 = pass, 1 = regression)
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-500ms}"
GATE_RATIO="${GATE_RATIO:-2.0}"
WIRE_RATIO="${WIRE_RATIO:-1.0}"
BENCH_GATE_FACTOR="${BENCH_GATE_FACTOR:-1.5}"
BENCH_GATE_INJECT="${BENCH_GATE_INJECT:-1}"
BASELINE="scripts/bench_baseline.json"
RAW="$(mktemp)"
trap 'rm -f "$RAW" "$RAW.health"' EXIT

echo "bench_gate: running gated benchmarks (benchtime=$BENCHTIME, -cpu 1)..." >&2
go test -run '^$' -bench 'BenchmarkPredict$' -benchmem -benchtime "$BENCHTIME" -cpu 1 . | tee "$RAW" >&2
go test -run '^$' -bench 'BenchmarkServeIO$' -benchmem -benchtime "$BENCHTIME" -cpu 1 \
  ./internal/serve/ | tee -a "$RAW" >&2
go test -run '^$' -bench 'BenchmarkWire(Encode|Parse)(Request|Reply)$' -benchmem \
  -benchtime "$BENCHTIME" -cpu 1 ./internal/wire/ | tee -a "$RAW" >&2
go test -run '^$' -bench 'BenchmarkProxyTransport$' -benchmem -benchtime "$BENCHTIME" \
  ./internal/fleet/ | tee -a "$RAW" >&2

# ns <benchmark-substring>: ns/op of the first matching result line.
ns() {
  awk -v b="$1" 'index($1, b) && $4 == "ns/op" {printf "%d", $3; exit}' "$RAW"
}
# allocs <benchmark-substring>: allocs/op of the first matching result line.
allocs() {
  awk -v b="$1" 'index($1, b) && $NF == "allocs/op" {printf "%d", $(NF-1); exit}' "$RAW"
}

f64_call=$(ns "BenchmarkPredict/float64/call")
int8_batch=$(ns "BenchmarkPredict/int8/batch64")
decode_ns=$(ns "BenchmarkServeIO/decode/fast")
render_ns=$(ns "BenchmarkServeIO/render/fast")
decode_allocs=$(allocs "BenchmarkServeIO/decode/fast")
render_allocs=$(allocs "BenchmarkServeIO/render/fast")
wire_enc_req=$(ns "BenchmarkWireEncodeRequest")
wire_par_req=$(ns "BenchmarkWireParseRequest")
wire_enc_rep=$(ns "BenchmarkWireEncodeReply")
wire_par_rep=$(ns "BenchmarkWireParseReply")
for v in "$f64_call" "$int8_batch" "$decode_ns" "$render_ns" \
  "$wire_enc_req" "$wire_par_req" "$wire_enc_rep" "$wire_par_rep"; do
  if [ -z "$v" ]; then
    echo "bench_gate: FAIL - missing benchmark result" >&2
    exit 1
  fi
done

int8_batch=$(jq -n --argjson n "$int8_batch" --argjson m "$BENCH_GATE_INJECT" '($n * $m) | round')
[ "$BENCH_GATE_INJECT" != "1" ] && \
  echo "bench_gate: INJECT x$BENCH_GATE_INJECT -> int8/batch64 treated as ${int8_batch}ns" >&2

fail=0

# Gate 1: same-run precision ratio.
ratio=$(jq -n --argjson a "$f64_call" --argjson b "$int8_batch" \
  'if $b > 0 then (($a / $b) * 100 | round) / 100 else 0 end')
if jq -en --argjson r "$ratio" --argjson want "$GATE_RATIO" '$r < $want' >/dev/null; then
  echo "bench_gate: FAIL - int8/batch64 (${int8_batch}ns) is only ${ratio}x faster than float64/call (${f64_call}ns), want >= ${GATE_RATIO}x" >&2
  fail=1
else
  echo "bench_gate: ok - int8/batch64 ${int8_batch}ns vs float64/call ${f64_call}ns (${ratio}x >= ${GATE_RATIO}x)" >&2
fi

# Gate 2: zero-allocation serve path.
for pair in "decode/fast:$decode_allocs" "render/fast:$render_allocs"; do
  name="${pair%%:*}"; got="${pair##*:}"
  if [ "${got:-1}" != "0" ]; then
    echo "bench_gate: FAIL - BenchmarkServeIO/$name reports ${got:-?} allocs/op, want 0" >&2
    fail=1
  else
    echo "bench_gate: ok - BenchmarkServeIO/$name 0 allocs/op" >&2
  fi
done

# Gate 4a: zero-allocation wire codec (the router proxy fast path).
for b in WireEncodeRequest WireParseRequest WireEncodeReply WireParseReply; do
  got=$(allocs "Benchmark$b")
  if [ "${got:-1}" != "0" ]; then
    echo "bench_gate: FAIL - Benchmark$b reports ${got:-?} allocs/op, want 0" >&2
    fail=1
  else
    echo "bench_gate: ok - Benchmark$b 0 allocs/op" >&2
  fi
done

# Gate 4b: same-run transport ratio — the wire proxy path must not fall
# behind the HTTP proxy path it replaced.
http_ns=$(ns "BenchmarkProxyTransport/http")
wire_ns=$(ns "BenchmarkProxyTransport/wire")
if [ -z "$http_ns" ] || [ -z "$wire_ns" ]; then
  echo "bench_gate: FAIL - missing BenchmarkProxyTransport result" >&2
  fail=1
else
  wratio=$(jq -n --argjson a "$http_ns" --argjson b "$wire_ns" \
    'if $b > 0 then (($a / $b) * 100 | round) / 100 else 0 end')
  if jq -en --argjson r "$wratio" --argjson want "$WIRE_RATIO" '$r < $want' >/dev/null; then
    echo "bench_gate: FAIL - proxy wire (${wire_ns}ns) is only ${wratio}x the http path (${http_ns}ns), want >= ${WIRE_RATIO}x" >&2
    fail=1
  else
    echo "bench_gate: ok - proxy wire ${wire_ns}ns vs http ${http_ns}ns (${wratio}x >= ${WIRE_RATIO}x)" >&2
  fi
fi

# Gate 5: no-fault health overhead. The benchmark reports a same-run
# interleaved ratio, so runner speed cancels; the median over HEALTH_COUNT
# repetitions shrugs off the occasional noisy repetition.
HEALTH_OVERHEAD="${HEALTH_OVERHEAD:-1.02}"
HEALTH_COUNT="${HEALTH_COUNT:-3}"
HEALTH_PAIRS="${HEALTH_PAIRS:-30}"
echo "bench_gate: running health-overhead benchmark (${HEALTH_PAIRS} pairs x ${HEALTH_COUNT})..." >&2
go test -run '^$' -bench 'BenchmarkSimulatorHealthOverhead$' \
  -benchtime "${HEALTH_PAIRS}x" -count "$HEALTH_COUNT" -cpu 1 . | tee "$RAW.health" >&2
hratio=$(awk '
  index($1, "BenchmarkSimulatorHealthOverhead") == 1 {
    for (i = 2; i < NF; i++) if ($(i + 1) == "armed-over-nofault") rs[n++] = $i
  }
  END {
    if (n == 0) exit 1
    asort_n = n
    for (i = 0; i < asort_n; i++) for (j = i + 1; j < asort_n; j++)
      if (rs[j] + 0 < rs[i] + 0) { t = rs[i]; rs[i] = rs[j]; rs[j] = t }
    print rs[int(n / 2)]
  }' "$RAW.health")
rm -f "$RAW.health"
if [ -z "$hratio" ]; then
  echo "bench_gate: FAIL - missing BenchmarkSimulatorHealthOverhead result" >&2
  fail=1
elif jq -en --argjson r "$hratio" --argjson want "$HEALTH_OVERHEAD" '$r > $want' >/dev/null; then
  echo "bench_gate: FAIL - armed health machinery costs ${hratio}x the no-fault path, want <= ${HEALTH_OVERHEAD}x" >&2
  fail=1
else
  echo "bench_gate: ok - armed-over-nofault median ${hratio}x <= ${HEALTH_OVERHEAD}x" >&2
fi

# Gate 3: absolute ns/op vs the committed baseline, scaled by the factor.
for pair in \
  "BenchmarkPredict/float64/call:$f64_call" \
  "BenchmarkPredict/int8/batch64:$int8_batch" \
  "BenchmarkServeIO/decode/fast:$decode_ns" \
  "BenchmarkServeIO/render/fast:$render_ns" \
  "BenchmarkWireEncodeRequest:$wire_enc_req" \
  "BenchmarkWireParseRequest:$wire_par_req" \
  "BenchmarkWireEncodeReply:$wire_enc_rep" \
  "BenchmarkWireParseReply:$wire_par_rep"; do
  name="${pair%:*}"; got="${pair##*:}"
  base=$(jq -r --arg k "$name" '.ns_op[$k] // empty' "$BASELINE")
  if [ -z "$base" ]; then
    echo "bench_gate: FAIL - $name missing from $BASELINE" >&2
    fail=1
    continue
  fi
  limit=$(jq -n --argjson b "$base" --argjson f "$BENCH_GATE_FACTOR" '($b * $f) | round')
  if [ "$got" -gt "$limit" ]; then
    echo "bench_gate: FAIL - $name ${got}ns exceeds baseline ${base}ns x ${BENCH_GATE_FACTOR} = ${limit}ns" >&2
    fail=1
  else
    echo "bench_gate: ok - $name ${got}ns <= ${limit}ns (baseline ${base}ns x ${BENCH_GATE_FACTOR})" >&2
  fi
done

if [ "$fail" != "0" ]; then
  echo "bench_gate: REGRESSION DETECTED" >&2
  exit 1
fi
echo "bench_gate: all gates passed" >&2
