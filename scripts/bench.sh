#!/usr/bin/env bash
# bench.sh — run the simulation-core benchmarks and write BENCH_simcore.json,
# then benchmark the serving daemon end to end and write BENCH_server.json.
#
# Part 1 runs the two root hot-path benchmarks (BenchmarkSimulatorThroughput
# and BenchmarkDatasetGeneration, both at QuickScale) with -benchmem, parses
# the output, and writes machine-readable before/after numbers to
# BENCH_simcore.json at the repo root. The "baseline" block is the seed tree
# measured immediately before the allocation-free event core landed (commit
# 3c74399, benchtime=2s, Intel Xeon @ 2.70GHz); the "after" block is whatever
# tree the script runs on. CI runs this non-blockingly so the numbers stay
# visible without shared-runner noise failing the build.
#
# Part 2 benchmarks the serving daemon end to end: it trains one quick model,
# then for each shard count in SHARD_SWEEP boots ssdkeeperd with that -shards,
# drives it with keeperload (closed loop, -spread so tenants use every shard),
# and records the throughput sweep plus the 8x/1x scaling ratio in
# BENCH_server.json. The sweep runs device-bound: SWEEP_ACCEL is low enough
# that each shard's simulated device — whose wall throughput is its simulated
# IOPS times accel — is the bottleneck, not the host CPU, so added shards add
# capacity the way added devices do and the sweep measures how well the shard
# goroutines keep their devices busy. Skip with SERVER=0.
#
# Part 3 reruns the sweep CPU-bound and merges a "cpu_bound" block into
# BENCH_server.json: CPU_ACCEL is high enough that the simulated devices
# complete in almost no wall time, so the host CPU — request decode, keeper
# inference, simulation bookkeeping, response encode — is the bottleneck and
# req/s measures the serve path itself. Each shard count runs twice, once
# with the float64 kernel and once with -quantize (int8), so the block
# records what int8 batched inference buys end to end. Skip with CPU_BOUND=0.
# The merge is additive (jq '. + {cpu_bound: ...}'), so the Part 2 portion of
# BENCH_server.json is byte-identical whether or not Part 3 runs.
#
# Part 4 benchmarks the fleet data plane and writes BENCH_fleet.json: for
# each node count in FLEET_SWEEP it boots that many wire-enabled nodes plus
# one keeperfleet router and measures router-vs-direct throughput and
# round-trip p99 over both transports (HTTP JSON proxy vs the persistent
# framed wire protocol), on the single-request and batch paths. Skip with
# FLEET=0; runs even under SERVER=0.
#
# Part 5 (directly after Part 1 in the file, since it needs no daemons)
# merges a "health" block into BENCH_simcore.json: degraded-device
# throughput and read p99 under a mid-run die failure + retry tail, and the
# interleaved armed-over-nofault ratio that bench_gate.sh bounds at <= 2%.
# Skip with HEALTH=0.
#
# Usage:
#   scripts/bench.sh            # benchtime=2s, writes both BENCH files
#   BENCHTIME=5s scripts/bench.sh
#   OUT=/tmp/b.json SERVER=0 scripts/bench.sh
#   SHARD_SWEEP="1 8" SWEEP_N=2000 scripts/bench.sh
#   CPU_BOUND=0 scripts/bench.sh      # device-bound sweep only
set -euo pipefail

cd "$(dirname "$0")/.."
BENCHTIME="${BENCHTIME:-2s}"
OUT="${OUT:-BENCH_simcore.json}"
SERVER="${SERVER:-1}"
SERVER_OUT="${SERVER_OUT:-BENCH_server.json}"
SHARD_SWEEP="${SHARD_SWEEP:-1 2 4 8}"
SWEEP_N="${SWEEP_N:-6000}"
SWEEP_ACCEL="${SWEEP_ACCEL:-0.02}"
SWEEP_WORKERS="${SWEEP_WORKERS:-128}"
PORT="${PORT:-18095}"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

echo "running simulation-core benchmarks (benchtime=$BENCHTIME)..." >&2
go test -run '^$' -bench 'BenchmarkSimulatorThroughput$|BenchmarkDatasetGeneration$' \
  -benchmem -benchtime "$BENCHTIME" . | tee "$RAW" >&2

# Parse `go test -bench` lines. Throughput reports an extra requests/s metric:
#   BenchmarkSimulatorThroughput-8  N  <ns> ns/op  <r> requests/s  <B> B/op  <a> allocs/op
#   BenchmarkDatasetGeneration-8    N  <ns> ns/op  <B> B/op  <a> allocs/op
metric() { # metric <benchmark-prefix> <unit>
  awk -v bench="$1" -v unit="$2" '
    index($1, bench) == 1 {
      for (i = 2; i < NF; i++) if ($(i + 1) == unit) { printf "%s", $i; exit }
    }' "$RAW"
}

json_field() { # json_field <benchmark-prefix> — emits the per-benchmark object
  local ns bytes allocs reqs
  ns=$(metric "$1" "ns/op"); bytes=$(metric "$1" "B/op"); allocs=$(metric "$1" "allocs/op")
  reqs=$(metric "$1" "requests/s")
  if [ -z "$ns" ]; then
    echo "bench.sh: no result parsed for $1" >&2
    exit 1
  fi
  printf '{"ns_op": %s, "bytes_op": %s, "allocs_op": %s' "$ns" "$bytes" "$allocs"
  [ -n "$reqs" ] && printf ', "requests_per_s": %s' "$reqs"
  printf '}'
}

cpu=$(awk -F': ' '/^model name/ {print $2; exit}' /proc/cpuinfo 2>/dev/null || true)
thr=$(json_field BenchmarkSimulatorThroughput)
gen=$(json_field BenchmarkDatasetGeneration)

cat > "$OUT" <<EOF
{
  "benchtime": "$BENCHTIME",
  "cpu": "${cpu:-unknown}",
  "baseline": {
    "commit": "3c74399",
    "note": "seed tree before the allocation-free event core (benchtime=2s)",
    "SimulatorThroughput": {"ns_op": 30373374, "bytes_op": 8435243, "allocs_op": 138728, "requests_per_s": 164618},
    "DatasetGeneration": {"ns_op": 388885978, "bytes_op": 141203259, "allocs_op": 1219674}
  },
  "after": {
    "SimulatorThroughput": $thr,
    "DatasetGeneration": $gen
  }
}
EOF
echo "wrote $OUT" >&2

# ---- Part 5: device-health cost -> health block in BENCH_simcore.json -----
# BenchmarkSimulatorHealth runs the Part 1 throughput workload immortal,
# with the health machinery armed but no faults, and through a mid-run die
# failure + retry tail; BenchmarkSimulatorHealthOverhead reports the armed/
# nofault ratio from interleaved GC-isolated pairs (the number bench_gate.sh
# holds at <= 2%). Skip with HEALTH=0.
if [ "${HEALTH:-1}" != "0" ]; then
echo "running device-health benchmarks (benchtime=$BENCHTIME)..." >&2
go test -run '^$' -bench 'BenchmarkSimulatorHealth(Overhead)?$' \
  -benchtime "$BENCHTIME" . | tee "$RAW" >&2

health_metric() { # health_metric <benchmark-suffix> <unit>
  awk -v bench="BenchmarkSimulatorHealth/$1" -v unit="$2" '
    index($1, bench) == 1 {
      for (i = 2; i < NF; i++) if ($(i + 1) == unit) { printf "%s", $i; exit }
    }' "$RAW"
}
nofault_rps=$(health_metric nofault "requests/s")
degraded_rps=$(health_metric degraded "requests/s")
nofault_p99=$(health_metric nofault "read-p99-us")
degraded_p99=$(health_metric degraded "read-p99-us")
overhead=$(awk 'index($1, "BenchmarkSimulatorHealthOverhead") == 1 {
  for (i = 2; i < NF; i++) if ($(i + 1) == "armed-over-nofault") { printf "%s", $i; exit }
}' "$RAW")
for v in "$nofault_rps" "$degraded_rps" "$nofault_p99" "$degraded_p99" "$overhead"; do
  if [ -z "$v" ]; then
    echo "bench.sh: no result parsed for the health benchmarks" >&2
    exit 1
  fi
done

jq \
  --argjson nr "$nofault_rps" --argjson dr "$degraded_rps" \
  --argjson np "$nofault_p99" --argjson dp "$degraded_p99" \
  --argjson ov "$overhead" \
  '. + {health: {
     note: "device-health tier: nofault = FaultPlan nil; degraded = one die of 16 dead at 40% of the run plus a 25% read-retry tail; armed_over_nofault_ns = interleaved same-run ratio of an armed-but-empty plan over nil (the <= 1.02 bench_gate.sh bound)",
     nofault: {requests_per_s: $nr, read_p99_us: $np},
     degraded: {requests_per_s: $dr, read_p99_us: $dp},
     armed_over_nofault_ns: $ov}}' \
  "$OUT" > "$OUT.tmp"
mv "$OUT.tmp" "$OUT"
echo "merged health block into $OUT (degraded/nofault rps: $(jq -n --argjson a "$nofault_rps" --argjson b "$degraded_rps" 'if $a > 0 then ($b / $a * 100 | round) / 100 else 0 end'), armed overhead ratio $overhead)" >&2
fi # HEALTH

BIN="$(mktemp -d)"
trap 'jobs -p | xargs -r kill 2>/dev/null; rm -rf "$RAW" "$BIN"' EXIT

if [ "$SERVER" != "0" ]; then

# ---- Part 2: serving-daemon shard sweep -> BENCH_server.json --------------
ADDR="127.0.0.1:$PORT"
URL="http://$ADDR"

# Concurrent-inference microbenchmark: Keeper.Predict under RunParallel at 1
# and $(nproc) workers. With pooled per-caller inference scratch (no shared
# Predict mutex) ns/op stays roughly flat as workers are added.
echo "running predict-parallel benchmark (-cpu 1,$(nproc))..." >&2
go test -run '^$' -bench 'BenchmarkPredictParallel$' -cpu "1,$(nproc)" \
  -benchtime "$BENCHTIME" . | tee "$BIN/predict.txt" >&2
predict_1=$(awk '/^BenchmarkPredictParallel/ {print $3; exit}' "$BIN/predict.txt")
predict_n=$(awk '/^BenchmarkPredictParallel/ {v = $3} END {print v}' "$BIN/predict.txt")
if [ -z "$predict_1" ]; then
  echo "bench.sh: no result parsed for BenchmarkPredictParallel" >&2
  exit 1
fi

echo "building serving daemon, trainer, and load generator..." >&2
go build -o "$BIN/ssdkeeperd" ./cmd/ssdkeeperd
go build -o "$BIN/keeper-train" ./cmd/keeper-train
go build -o "$BIN/keeperload" ./cmd/keeperload

# One quick model shared by every sweep point, so shard counts are compared
# under an identical keeper instead of per-boot self-training noise.
echo "training quick model for the sweep..." >&2
"$BIN/keeper-train" -workloads 8 -requests 600 -iterations 40 -batch 16 \
  -hidden 16 -out "$BIN/model.json" -q

start_daemon() { # start_daemon <accel> <shards> [extra daemon flags...]
  local accel="$1" shards="$2"
  shift 2
  "$BIN/ssdkeeperd" -addr "$ADDR" -model "$BIN/model.json" \
    -accel "$accel" -shards "$shards" -window 50ms -adapt-every 50ms "$@" \
    2>"$BIN/daemon.log" &
  DPID=$!
  for _ in $(seq 1 200); do
    curl -sf "$URL/healthz" >/dev/null 2>&1 && break
    sleep 0.3
  done
  curl -sf "$URL/healthz" >/dev/null || {
    echo "bench.sh: daemon never became healthy" >&2
    cat "$BIN/daemon.log" >&2
    exit 1
  }
}

stop_daemon() {
  kill -TERM "$DPID"
  wait "$DPID" || {
    echo "bench.sh: daemon exited non-zero on drain" >&2
    cat "$BIN/daemon.log" >&2
    exit 1
  }
}

sweep_points=""
first_thr=""
last_thr=""
for shards in $SHARD_SWEEP; do
  echo "sweep: $shards shard(s), $SWEEP_N requests, $SWEEP_WORKERS workers, accel $SWEEP_ACCEL..." >&2
  start_daemon "$SWEEP_ACCEL" "$shards"
  "$BIN/keeperload" -addr "$URL" -n "$SWEEP_N" -concurrency "$SWEEP_WORKERS" \
    -conns "$SWEEP_WORKERS" -spread -write-ratios 0.9,0.1,0.8,0.2 -json \
    > "$BIN/load-$shards.json"
  switches=$(curl -sf "$URL/metrics" \
    | awk '$1 == "ssdkeeper_keeper_switches_total" && !seen {print $NF; seen = 1}')
  stop_daemon
  thr=$(jq -r '.throughput_rps' "$BIN/load-$shards.json")
  point=$(jq --argjson shards "$shards" --argjson switches "${switches:-0}" \
    '{shards: $shards, throughput_rps: .throughput_rps, ok: .ok,
      rejected: .rejected, failed: .failed, wall_seconds: .wall_seconds,
      keeper_switches: $switches}' "$BIN/load-$shards.json")
  sweep_points="$sweep_points${sweep_points:+,}$point"
  [ -z "$first_thr" ] && first_thr="$thr"
  last_thr="$thr"
  echo "sweep: $shards shard(s): $thr req/s, ${switches:-0} keeper switches" >&2
done

scaling=$(jq -n --argjson a "$first_thr" --argjson b "$last_thr" \
  'if $a > 0 then ($b / $a * 1000 | round) / 1000 else 0 end')

jq -n \
  --argjson points "[$sweep_points]" \
  --argjson n "$SWEEP_N" \
  --argjson accel "$SWEEP_ACCEL" \
  --argjson workers "$SWEEP_WORKERS" \
  --argjson scaling "$scaling" \
  --argjson procs "$(nproc)" \
  --arg cpu "${cpu:-unknown}" \
  --argjson p1 "$predict_1" \
  --argjson pn "$predict_n" \
  --slurpfile detail "$BIN/load-${SHARD_SWEEP##* }.json" \
  '{requests_per_point: $n, accel: $accel, workers: $workers,
    cpu: $cpu, nproc: $procs,
    note: "device-bound sweep: closed loop with -spread keys; accel is low enough that each shard simulated device, not the host CPU, bounds throughput, so req/s tracks shard count",
    predict_parallel: {
      note: "Keeper.Predict under RunParallel; pooled per-caller inference scratch, no shared mutex, so ns/op holds flat as workers are added",
      cpu1_ns_op: $p1, cpuN_ns_op: $pn, cpus: $procs},
    sweep: $points,
    scaling_last_over_first: $scaling,
    load_detail_last_point: $detail[0]}' > "$SERVER_OUT"
echo "wrote $SERVER_OUT (scaling ${SHARD_SWEEP##* }x over ${SHARD_SWEEP%% *}x: $scaling)" >&2

if [ "${CPU_BOUND:-1}" != "0" ]; then

# ---- Part 3: CPU-bound precision sweep -> cpu_bound block ------------------
CPU_ACCEL="${CPU_ACCEL:-2.0}"
CPU_SHARD_SWEEP="${CPU_SHARD_SWEEP:-$SHARD_SWEEP}"

cpu_points=""
f64_best=""
int8_best=""
for prec in float64 int8; do
  qflag=""
  [ "$prec" = "int8" ] && qflag="-quantize"
  for shards in $CPU_SHARD_SWEEP; do
    echo "cpu-bound sweep: $prec, $shards shard(s), accel $CPU_ACCEL..." >&2
    # shellcheck disable=SC2086 # qflag is intentionally empty for float64
    start_daemon "$CPU_ACCEL" "$shards" $qflag
    "$BIN/keeperload" -addr "$URL" -n "$SWEEP_N" -concurrency "$SWEEP_WORKERS" \
      -conns "$SWEEP_WORKERS" -spread -write-ratios 0.9,0.1,0.8,0.2 -json \
      > "$BIN/cpu-$prec-$shards.json"
    stop_daemon
    thr=$(jq -r '.throughput_rps' "$BIN/cpu-$prec-$shards.json")
    point=$(jq --arg prec "$prec" --argjson shards "$shards" \
      '{precision: $prec, shards: $shards, throughput_rps: .throughput_rps,
        ok: .ok, rejected: .rejected, failed: .failed,
        wall_seconds: .wall_seconds}' "$BIN/cpu-$prec-$shards.json")
    cpu_points="$cpu_points${cpu_points:+,}$point"
    # Track each precision's best point for the headline ratio.
    case "$prec" in
      float64) f64_best=$(jq -n --argjson a "${f64_best:-0}" --argjson b "$thr" \
        'if $b > $a then $b else $a end') ;;
      int8) int8_best=$(jq -n --argjson a "${int8_best:-0}" --argjson b "$thr" \
        'if $b > $a then $b else $a end') ;;
    esac
    echo "cpu-bound sweep: $prec, $shards shard(s): $thr req/s" >&2
  done
done

prec_ratio=$(jq -n --argjson a "$f64_best" --argjson b "$int8_best" \
  'if $a > 0 then ($b / $a * 1000 | round) / 1000 else 0 end')

jq \
  --argjson points "[$cpu_points]" \
  --argjson accel "$CPU_ACCEL" \
  --argjson n "$SWEEP_N" \
  --argjson workers "$SWEEP_WORKERS" \
  --argjson ratio "$prec_ratio" \
  '. + {cpu_bound: {
     note: "CPU-bound sweep: accel is high enough that simulated devices finish in almost no wall time, so the host CPU (decode, keeper inference, simulate, encode) bounds throughput; each shard count runs with the float64 kernel and with -quantize (int8 batched inference)",
     accel: $accel, requests_per_point: $n, workers: $workers,
     sweep: $points,
     int8_over_float64_best_rps: $ratio}}' \
  "$SERVER_OUT" > "$SERVER_OUT.tmp"
mv "$SERVER_OUT.tmp" "$SERVER_OUT"
echo "merged cpu_bound block into $SERVER_OUT (int8/float64 best-rps ratio: $prec_ratio)" >&2

fi # CPU_BOUND
fi # SERVER

[ "${FLEET:-1}" = "0" ] && exit 0

# ---- Part 4: fleet data-plane sweep -> BENCH_fleet.json --------------------
# Router-vs-direct throughput and round-trip p99 on both data planes (HTTP
# proxy vs persistent framed wire), for the single-request and batch paths,
# across 1/2/4-node fleets. Nodes run at a high accel so the simulated
# devices finish in almost no wall time and the transport — not the device —
# bounds throughput; every keeperload run replays the identical request
# stream against the router and then directly against the nodes, so each
# point carries its own router-overhead measurement. Skip with FLEET=0.
FLEET_OUT="${FLEET_OUT:-BENCH_fleet.json}"
FLEET_SWEEP="${FLEET_SWEEP:-1 2 4}"
FLEET_N="${FLEET_N:-$SWEEP_N}"
FLEET_ACCEL="${FLEET_ACCEL:-2.0}"
FLEET_WORKERS="${FLEET_WORKERS:-64}"
FLEET_BATCH="${FLEET_BATCH:-64}"
FLEET_TENANTS="${FLEET_TENANTS:-8}"
FPORT="${FPORT:-18100}" # router; node i at FPORT+i, wire ports at +1000

echo "building fleet binaries..." >&2
go build -o "$BIN/ssdkeeperd" ./cmd/ssdkeeperd
go build -o "$BIN/keeperload" ./cmd/keeperload
go build -o "$BIN/keeperfleet" ./cmd/keeperfleet

wait_http() { # wait_http <url> <log>
  for _ in $(seq 1 200); do
    curl -sf "$1/readyz" >/dev/null 2>&1 && return 0
    sleep 0.3
  done
  echo "bench.sh: $1 never became ready" >&2
  cat "$2" >&2
  exit 1
}

fleet_load() { # fleet_load <out.json> [keeperload flags...]
  local out="$1"
  shift
  "$BIN/keeperload" -n "$FLEET_N" -concurrency "$FLEET_WORKERS" \
    -tenants "$FLEET_TENANTS" -write-ratios 0.9,0.1,0.8,0.2 -json "$@" > "$out"
}

fleet_extract() { # fleet_extract <load.json> — the per-point summary object
  jq '{throughput_rps, rtt_p50_ms, rtt_p99_ms, ok, rejected, failed,
       router_overhead_p99_ms,
       direct: {throughput_rps: .direct.throughput_rps,
                rtt_p99_ms: .direct.rtt_p99_ms}}' "$1"
}

fleet_points=""
for k in $FLEET_SWEEP; do
  echo "fleet sweep: $k node(s), $FLEET_N requests, accel $FLEET_ACCEL..." >&2
  NPIDS=()
  NODE_URLS=""
  WIRE_ADDRS=""
  DIRECT_HTTP=""
  DIRECT_WIRE=""
  for i in $(seq 1 "$k"); do
    np=$((FPORT + i)); wp=$((FPORT + 1000 + i))
    "$BIN/ssdkeeperd" -addr "127.0.0.1:$np" -wire-listen "127.0.0.1:$wp" \
      -accel "$FLEET_ACCEL" -tenants "$FLEET_TENANTS" -no-keeper -q \
      2>"$BIN/fleet-node-$np.log" &
    NPIDS+=($!)
    NODE_URLS="$NODE_URLS,http://127.0.0.1:$np"
    WIRE_ADDRS="$WIRE_ADDRS,127.0.0.1:$wp"
    DIRECT_HTTP="$DIRECT_HTTP,http://127.0.0.1:$np"
    DIRECT_WIRE="$DIRECT_WIRE,127.0.0.1:$wp"
  done
  NODE_URLS="${NODE_URLS#,}"; WIRE_ADDRS="${WIRE_ADDRS#,}"
  DIRECT_HTTP="${DIRECT_HTTP#,}"; DIRECT_WIRE="${DIRECT_WIRE#,}"
  for i in $(seq 1 "$k"); do
    wait_http "http://127.0.0.1:$((FPORT + i))" "$BIN/fleet-node-$((FPORT + i)).log"
  done
  "$BIN/keeperfleet" -addr "127.0.0.1:$FPORT" -nodes "$NODE_URLS" \
    -wire-nodes "$WIRE_ADDRS" -wire-listen "127.0.0.1:$((FPORT + 1000))" \
    -tenants "$FLEET_TENANTS" -q 2>"$BIN/fleet-router.log" &
  RPID=$!
  wait_http "http://127.0.0.1:$FPORT" "$BIN/fleet-router.log"

  fleet_load "$BIN/fleet-$k-http-io.json" -addr "http://127.0.0.1:$FPORT" \
    -direct "$DIRECT_HTTP"
  fleet_load "$BIN/fleet-$k-wire-io.json" -wire -addr "127.0.0.1:$((FPORT + 1000))" \
    -direct "$DIRECT_WIRE"
  fleet_load "$BIN/fleet-$k-http-batch.json" -addr "http://127.0.0.1:$FPORT" \
    -direct "$DIRECT_HTTP" -batch "$FLEET_BATCH"
  fleet_load "$BIN/fleet-$k-wire-batch.json" -wire -addr "127.0.0.1:$((FPORT + 1000))" \
    -direct "$DIRECT_WIRE" -batch "$FLEET_BATCH"

  kill -TERM "$RPID" && wait "$RPID" || {
    echo "bench.sh: router exited non-zero" >&2
    cat "$BIN/fleet-router.log" >&2
    exit 1
  }
  for pid in "${NPIDS[@]}"; do
    kill -TERM "$pid" && wait "$pid" || {
      echo "bench.sh: fleet node exited non-zero" >&2
      exit 1
    }
  done

  point=$(jq -n --argjson nodes "$k" \
    --argjson hio "$(fleet_extract "$BIN/fleet-$k-http-io.json")" \
    --argjson wio "$(fleet_extract "$BIN/fleet-$k-wire-io.json")" \
    --argjson hb "$(fleet_extract "$BIN/fleet-$k-http-batch.json")" \
    --argjson wb "$(fleet_extract "$BIN/fleet-$k-wire-batch.json")" \
    '{nodes: $nodes,
      io: {http: $hio, wire: $wio,
           wire_over_http_rps: (if $hio.throughput_rps > 0
             then ($wio.throughput_rps / $hio.throughput_rps * 100 | round) / 100 else 0 end)},
      batch: {http: $hb, wire: $wb,
           wire_over_http_rps: (if $hb.throughput_rps > 0
             then ($wb.throughput_rps / $hb.throughput_rps * 100 | round) / 100 else 0 end)}}')
  fleet_points="$fleet_points${fleet_points:+,}$point"
  echo "fleet sweep: $k node(s): io wire/http rps ratio $(echo "$point" | jq -r '.io.wire_over_http_rps'), batch ratio $(echo "$point" | jq -r '.batch.wire_over_http_rps')" >&2
done

jq -n \
  --argjson points "[$fleet_points]" \
  --argjson n "$FLEET_N" \
  --argjson accel "$FLEET_ACCEL" \
  --argjson workers "$FLEET_WORKERS" \
  --argjson batch "$FLEET_BATCH" \
  --argjson tenants "$FLEET_TENANTS" \
  --arg cpu "${cpu:-unknown}" \
  '{requests_per_point: $n, accel: $accel, workers: $workers,
    batch_size: $batch, tenants: $tenants, cpu: $cpu,
    note: "fleet data-plane sweep: closed loop through one keeperfleet router; http = per-request JSON proxy, wire = persistent framed transport with pipelining and write coalescing; each point also replays the identical stream directly against the nodes, so router_overhead_p99_ms = router rtt p99 - direct rtt p99; accel is high enough that transport, not the simulated device, bounds throughput",
    sweep: $points}' > "$FLEET_OUT"
echo "wrote $FLEET_OUT" >&2
