#!/usr/bin/env bash
# bench.sh — run the simulation-core benchmarks and write BENCH_simcore.json.
#
# Runs the two root hot-path benchmarks (BenchmarkSimulatorThroughput and
# BenchmarkDatasetGeneration, both at QuickScale) with -benchmem, parses the
# output, and writes machine-readable before/after numbers to
# BENCH_simcore.json at the repo root. The "baseline" block is the seed tree
# measured immediately before the allocation-free event core landed (commit
# 3c74399, benchtime=2s, Intel Xeon @ 2.70GHz); the "after" block is whatever
# tree the script runs on. CI runs this non-blockingly so the numbers stay
# visible without shared-runner noise failing the build.
#
# Usage:
#   scripts/bench.sh            # benchtime=2s, writes BENCH_simcore.json
#   BENCHTIME=5s scripts/bench.sh
#   OUT=/tmp/b.json scripts/bench.sh
set -euo pipefail

cd "$(dirname "$0")/.."
BENCHTIME="${BENCHTIME:-2s}"
OUT="${OUT:-BENCH_simcore.json}"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

echo "running simulation-core benchmarks (benchtime=$BENCHTIME)..." >&2
go test -run '^$' -bench 'BenchmarkSimulatorThroughput$|BenchmarkDatasetGeneration$' \
  -benchmem -benchtime "$BENCHTIME" . | tee "$RAW" >&2

# Parse `go test -bench` lines. Throughput reports an extra requests/s metric:
#   BenchmarkSimulatorThroughput-8  N  <ns> ns/op  <r> requests/s  <B> B/op  <a> allocs/op
#   BenchmarkDatasetGeneration-8    N  <ns> ns/op  <B> B/op  <a> allocs/op
metric() { # metric <benchmark-prefix> <unit>
  awk -v bench="$1" -v unit="$2" '
    index($1, bench) == 1 {
      for (i = 2; i < NF; i++) if ($(i + 1) == unit) { printf "%s", $i; exit }
    }' "$RAW"
}

json_field() { # json_field <benchmark-prefix> — emits the per-benchmark object
  local ns bytes allocs reqs
  ns=$(metric "$1" "ns/op"); bytes=$(metric "$1" "B/op"); allocs=$(metric "$1" "allocs/op")
  reqs=$(metric "$1" "requests/s")
  if [ -z "$ns" ]; then
    echo "bench.sh: no result parsed for $1" >&2
    exit 1
  fi
  printf '{"ns_op": %s, "bytes_op": %s, "allocs_op": %s' "$ns" "$bytes" "$allocs"
  [ -n "$reqs" ] && printf ', "requests_per_s": %s' "$reqs"
  printf '}'
}

cpu=$(awk -F': ' '/^model name/ {print $2; exit}' /proc/cpuinfo 2>/dev/null || true)
thr=$(json_field BenchmarkSimulatorThroughput)
gen=$(json_field BenchmarkDatasetGeneration)

cat > "$OUT" <<EOF
{
  "benchtime": "$BENCHTIME",
  "cpu": "${cpu:-unknown}",
  "baseline": {
    "commit": "3c74399",
    "note": "seed tree before the allocation-free event core (benchtime=2s)",
    "SimulatorThroughput": {"ns_op": 30373374, "bytes_op": 8435243, "allocs_op": 138728, "requests_per_s": 164618},
    "DatasetGeneration": {"ns_op": 388885978, "bytes_op": 141203259, "allocs_op": 1219674}
  },
  "after": {
    "SimulatorThroughput": $thr,
    "DatasetGeneration": $gen
  }
}
EOF
echo "wrote $OUT" >&2
