#!/usr/bin/env bash
# bench.sh — run the simulation-core benchmarks and write BENCH_simcore.json,
# then benchmark the serving daemon end to end and write BENCH_server.json.
#
# Part 1 runs the two root hot-path benchmarks (BenchmarkSimulatorThroughput
# and BenchmarkDatasetGeneration, both at QuickScale) with -benchmem, parses
# the output, and writes machine-readable before/after numbers to
# BENCH_simcore.json at the repo root. The "baseline" block is the seed tree
# measured immediately before the allocation-free event core landed (commit
# 3c74399, benchtime=2s, Intel Xeon @ 2.70GHz); the "after" block is whatever
# tree the script runs on. CI runs this non-blockingly so the numbers stay
# visible without shared-runner noise failing the build.
#
# Part 2 starts ssdkeeperd (accelerated clock, quick self-trained model),
# drives it with keeperload over HTTP, and records end-to-end throughput and
# per-tenant latency percentiles in BENCH_server.json. Skip it with SERVER=0.
#
# Usage:
#   scripts/bench.sh            # benchtime=2s, writes both BENCH files
#   BENCHTIME=5s scripts/bench.sh
#   OUT=/tmp/b.json SERVER=0 scripts/bench.sh
set -euo pipefail

cd "$(dirname "$0")/.."
BENCHTIME="${BENCHTIME:-2s}"
OUT="${OUT:-BENCH_simcore.json}"
SERVER="${SERVER:-1}"
SERVER_OUT="${SERVER_OUT:-BENCH_server.json}"
SERVER_N="${SERVER_N:-4000}"
PORT="${PORT:-18095}"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

echo "running simulation-core benchmarks (benchtime=$BENCHTIME)..." >&2
go test -run '^$' -bench 'BenchmarkSimulatorThroughput$|BenchmarkDatasetGeneration$' \
  -benchmem -benchtime "$BENCHTIME" . | tee "$RAW" >&2

# Parse `go test -bench` lines. Throughput reports an extra requests/s metric:
#   BenchmarkSimulatorThroughput-8  N  <ns> ns/op  <r> requests/s  <B> B/op  <a> allocs/op
#   BenchmarkDatasetGeneration-8    N  <ns> ns/op  <B> B/op  <a> allocs/op
metric() { # metric <benchmark-prefix> <unit>
  awk -v bench="$1" -v unit="$2" '
    index($1, bench) == 1 {
      for (i = 2; i < NF; i++) if ($(i + 1) == unit) { printf "%s", $i; exit }
    }' "$RAW"
}

json_field() { # json_field <benchmark-prefix> — emits the per-benchmark object
  local ns bytes allocs reqs
  ns=$(metric "$1" "ns/op"); bytes=$(metric "$1" "B/op"); allocs=$(metric "$1" "allocs/op")
  reqs=$(metric "$1" "requests/s")
  if [ -z "$ns" ]; then
    echo "bench.sh: no result parsed for $1" >&2
    exit 1
  fi
  printf '{"ns_op": %s, "bytes_op": %s, "allocs_op": %s' "$ns" "$bytes" "$allocs"
  [ -n "$reqs" ] && printf ', "requests_per_s": %s' "$reqs"
  printf '}'
}

cpu=$(awk -F': ' '/^model name/ {print $2; exit}' /proc/cpuinfo 2>/dev/null || true)
thr=$(json_field BenchmarkSimulatorThroughput)
gen=$(json_field BenchmarkDatasetGeneration)

cat > "$OUT" <<EOF
{
  "benchtime": "$BENCHTIME",
  "cpu": "${cpu:-unknown}",
  "baseline": {
    "commit": "3c74399",
    "note": "seed tree before the allocation-free event core (benchtime=2s)",
    "SimulatorThroughput": {"ns_op": 30373374, "bytes_op": 8435243, "allocs_op": 138728, "requests_per_s": 164618},
    "DatasetGeneration": {"ns_op": 388885978, "bytes_op": 141203259, "allocs_op": 1219674}
  },
  "after": {
    "SimulatorThroughput": $thr,
    "DatasetGeneration": $gen
  }
}
EOF
echo "wrote $OUT" >&2

[ "$SERVER" = "0" ] && exit 0

# ---- Part 2: serving-daemon benchmark -> BENCH_server.json ----------------
ADDR="127.0.0.1:$PORT"
URL="http://$ADDR"
BIN="$(mktemp -d)"
trap 'kill $(jobs -p) 2>/dev/null; rm -rf "$RAW" "$BIN"' EXIT

echo "building serving daemon and load generator..." >&2
go build -o "$BIN/ssdkeeperd" ./cmd/ssdkeeperd
go build -o "$BIN/keeperload" ./cmd/keeperload

"$BIN/ssdkeeperd" -addr "$ADDR" -accel 20 -window 50ms -adapt-every 50ms \
  -train-workloads 8 2>"$BIN/daemon.log" &
DPID=$!
for _ in $(seq 1 200); do
  curl -sf "$URL/healthz" >/dev/null 2>&1 && break
  sleep 0.3
done
curl -sf "$URL/healthz" >/dev/null || {
  echo "bench.sh: daemon never became healthy" >&2
  cat "$BIN/daemon.log" >&2
  exit 1
}

echo "driving $SERVER_N requests (closed loop, 32 workers, 4 tenants)..." >&2
"$BIN/keeperload" -addr "$URL" -n "$SERVER_N" -concurrency 32 \
  -write-ratios 0.9,0.1,0.8,0.2 -json > "$BIN/load.json"
switches=$(curl -sf "$URL/metrics" \
  | awk '$1 == "ssdkeeper_keeper_switches_total" && !seen {print $NF; seen = 1}')
kill -TERM "$DPID"
wait "$DPID" || {
  echo "bench.sh: daemon exited non-zero on drain" >&2
  cat "$BIN/daemon.log" >&2
  exit 1
}

# The load report is already JSON; wrap it with run metadata.
{
  printf '{\n  "requests": %s,\n  "accel": 20,\n' "$SERVER_N"
  printf '  "keeper_switches": %s,\n  "cpu": "%s",\n' "${switches:-0}" "${cpu:-unknown}"
  printf '  "load": '
  sed 's/^/  /' "$BIN/load.json" | sed '1s/^  //'
  printf '}\n'
} > "$SERVER_OUT"
echo "wrote $SERVER_OUT" >&2
